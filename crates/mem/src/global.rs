//! The per-cluster global-memory front-end: private per-core L1 caches
//! feeding the machine-wide shared back-end.

use virgo_sim::{Cycle, NextActivity};

use crate::backend::MemoryBackend;
use crate::cache::{Cache, CacheConfig};
use crate::dram::DramConfig;

/// Configuration of the global memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalMemoryConfig {
    /// Per-core L1 data cache.
    pub l1: CacheConfig,
    /// Shared L2 cache.
    pub l2: CacheConfig,
    /// DRAM interface.
    pub dram: DramConfig,
    /// Number of SIMT cores per cluster (each gets a private L1).
    pub cores: u32,
}

impl GlobalMemoryConfig {
    /// The Table 2 configuration for a given core count.
    pub fn default_soc(cores: u32) -> Self {
        GlobalMemoryConfig {
            l1: CacheConfig::l1_16k(),
            l2: CacheConfig::l2_512k(),
            dram: DramConfig::default_soc(),
            cores,
        }
    }
}

impl virgo_sim::StableHash for GlobalMemoryConfig {
    fn stable_hash(&self, h: &mut virgo_sim::StableHasher) {
        self.l1.stable_hash(&mut *h);
        self.l2.stable_hash(&mut *h);
        self.dram.stable_hash(&mut *h);
        h.write_u64(u64::from(self.cores));
    }
}

/// Aggregated statistics for one cluster's L1 front-end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlobalMemoryStats {
    /// L1 accesses summed over the cluster's cores.
    pub l1_accesses: u64,
    /// L1 misses summed over the cluster's cores.
    pub l1_misses: u64,
    /// L2 accesses (from L1 misses and DMA traffic). Only populated on the
    /// combined machine-wide view assembled by `SimReport`; the per-cluster
    /// front-end itself leaves it at zero because the L2 lives in the shared
    /// [`MemoryBackend`].
    pub l2_accesses: u64,
    /// L2 misses (see `l2_accesses` for scoping).
    pub l2_misses: u64,
    /// Bytes moved by DMA transfers through the L2 (see `l2_accesses`).
    pub dma_bytes: u64,
}

impl GlobalMemoryStats {
    /// Adds the counts of `other` into `self` (used to aggregate clusters).
    pub fn merge(&mut self, other: &GlobalMemoryStats) {
        self.l1_accesses += other.l1_accesses;
        self.l1_misses += other.l1_misses;
        self.l2_accesses += other.l2_accesses;
        self.l2_misses += other.l2_misses;
        self.dma_bytes += other.dma_bytes;
    }
}

/// One cluster's global-memory front-end: the private per-core L1 caches.
///
/// L1 misses are forwarded to the shared [`MemoryBackend`], which arbitrates
/// the L2 and DRAM channel between clusters.
///
/// # Example
///
/// ```
/// use virgo_mem::{GlobalMemory, GlobalMemoryConfig, MemoryBackend};
/// use virgo_sim::Cycle;
///
/// let config = GlobalMemoryConfig::default_soc(8);
/// let mut gmem = GlobalMemory::new(config);
/// let mut backend = MemoryBackend::new(config, 1);
/// let cold = gmem.access_from_core(Cycle::new(0), 0, 0x1000, 32, false, &mut backend);
/// let warm = gmem.access_from_core(cold, 0, 0x1000, 32, false, &mut backend);
/// assert!(warm - cold < cold, "L1 hit must be much faster than the cold miss");
/// ```
#[derive(Debug, Clone)]
pub struct GlobalMemory {
    config: GlobalMemoryConfig,
    cluster: u32,
    l1: Vec<Cache>,
    stats: GlobalMemoryStats,
}

impl GlobalMemory {
    /// Creates the front-end for cluster 0 with cold caches.
    pub fn new(config: GlobalMemoryConfig) -> Self {
        Self::for_cluster(config, 0)
    }

    /// Creates the front-end for an explicit cluster with cold caches.
    pub fn for_cluster(config: GlobalMemoryConfig, cluster: u32) -> Self {
        let l1 = (0..config.cores).map(|_| Cache::new(config.l1)).collect();
        GlobalMemory {
            config,
            cluster,
            l1,
            stats: GlobalMemoryStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GlobalMemoryConfig {
        &self.config
    }

    /// The cluster this front-end belongs to.
    pub fn cluster(&self) -> u32 {
        self.cluster
    }

    /// Aggregated L1 statistics; L2/DRAM statistics live on the shared
    /// [`MemoryBackend`].
    pub fn stats(&self) -> GlobalMemoryStats {
        self.stats
    }

    /// Serves one line-granular access from `core` (produced by the memory
    /// coalescer), returning the completion cycle. An L1 miss is forwarded to
    /// the shared `backend`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access_from_core(
        &mut self,
        now: Cycle,
        core: usize,
        line_addr: u64,
        bytes: u64,
        write: bool,
        backend: &mut MemoryBackend,
    ) -> Cycle {
        assert!(core < self.l1.len(), "core index {core} out of range");
        self.stats.l1_accesses += 1;
        let l1_latency = self.l1[core].latency();
        if self.l1[core].access(line_addr).is_hit() {
            return now.plus(l1_latency);
        }
        self.stats.l1_misses += 1;
        backend.line_access(now.plus(l1_latency), self.cluster, line_addr, bytes, write)
    }

    /// Serves a bulk DMA transfer on behalf of this cluster. The transfer
    /// bypasses the L1 caches entirely and streams through the shared L2.
    pub fn dma_access(
        &mut self,
        now: Cycle,
        addr: u64,
        bytes: u64,
        write: bool,
        backend: &mut MemoryBackend,
    ) -> Cycle {
        backend.dma_access(now, self.cluster, addr, bytes, write)
    }

    /// L1 hit rate of one core, for reports and tests.
    pub fn l1_hit_rate(&self, core: usize) -> f64 {
        self.l1
            .get(core)
            .map(|c| c.stats().hit_rate())
            .unwrap_or(0.0)
    }
}

impl NextActivity for GlobalMemory {
    /// The L1 caches are purely reactive and contribute no self-driven
    /// events.
    fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GlobalMemory, MemoryBackend) {
        let config = GlobalMemoryConfig::default_soc(2);
        (GlobalMemory::new(config), MemoryBackend::new(config, 1))
    }

    #[test]
    fn l1_hit_is_fast() {
        let (mut g, mut b) = setup();
        let cold = g.access_from_core(Cycle::new(0), 0, 0, 32, false, &mut b);
        assert!(cold.get() > 100, "cold miss reaches DRAM");
        let warm = g.access_from_core(cold, 0, 0, 32, false, &mut b);
        assert_eq!(warm - cold, Cycle::new(2));
        assert_eq!(g.stats().l1_accesses, 2);
        assert_eq!(g.stats().l1_misses, 1);
    }

    #[test]
    fn l1s_are_private_per_core() {
        let (mut g, mut b) = setup();
        g.access_from_core(Cycle::new(0), 0, 0, 32, false, &mut b);
        // Core 1 misses its own L1 but hits in the shared L2.
        let done = g.access_from_core(Cycle::new(1000), 1, 0, 32, false, &mut b);
        assert_eq!(done, Cycle::new(1000 + 2 + 12));
        assert_eq!(b.stats().l2_accesses, 2);
        assert_eq!(b.stats().l2_misses, 1);
    }

    #[test]
    fn dma_access_bypasses_l1() {
        let (mut g, mut b) = setup();
        let done = g.dma_access(Cycle::new(0), 0, 1024, false, &mut b);
        assert!(done.get() > 100);
        assert_eq!(g.stats().l1_accesses, 0);
        assert_eq!(b.stats().dma_bytes, 1024);
        // A later DMA of the same region hits in L2 and avoids DRAM.
        let warm = g.dma_access(done, 0, 1024, false, &mut b);
        assert!(warm - done < Cycle::new(50));
    }

    #[test]
    fn hit_rates_reported() {
        let (mut g, mut b) = setup();
        g.access_from_core(Cycle::new(0), 0, 0, 32, false, &mut b);
        g.access_from_core(Cycle::new(0), 0, 0, 32, false, &mut b);
        assert!((g.l1_hit_rate(0) - 0.5).abs() < 1e-12);
        assert_eq!(g.l1_hit_rate(9), 0.0);
        assert!(b.l2_hit_rate() >= 0.0);
    }

    #[test]
    fn stats_merge_across_clusters() {
        let mut a = GlobalMemoryStats {
            l1_accesses: 3,
            l1_misses: 1,
            ..Default::default()
        };
        let b = GlobalMemoryStats {
            l1_accesses: 2,
            l1_misses: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.l1_accesses, 5);
        assert_eq!(a.l1_misses, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_index_panics() {
        let (mut g, mut b) = setup();
        let _ = g.access_from_core(Cycle::new(0), 5, 0, 32, false, &mut b);
    }
}
