//! The global memory hierarchy: per-core L1 caches, shared L2, DRAM.

use virgo_sim::{Cycle, NextActivity};

use crate::cache::{Cache, CacheConfig};
use crate::dram::{DramConfig, DramModel, DramStats};

/// Configuration of the global memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalMemoryConfig {
    /// Per-core L1 data cache.
    pub l1: CacheConfig,
    /// Shared L2 cache.
    pub l2: CacheConfig,
    /// DRAM interface.
    pub dram: DramConfig,
    /// Number of SIMT cores (each gets a private L1).
    pub cores: u32,
}

impl GlobalMemoryConfig {
    /// The Table 2 configuration for a given core count.
    pub fn default_soc(cores: u32) -> Self {
        GlobalMemoryConfig {
            l1: CacheConfig::l1_16k(),
            l2: CacheConfig::l2_512k(),
            dram: DramConfig::default_soc(),
            cores,
        }
    }
}

/// Aggregated statistics for the global memory hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlobalMemoryStats {
    /// L1 accesses summed over all cores.
    pub l1_accesses: u64,
    /// L1 misses summed over all cores.
    pub l1_misses: u64,
    /// L2 accesses (from L1 misses and DMA traffic).
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Bytes moved by DMA transfers through the L2.
    pub dma_bytes: u64,
}

/// The global memory hierarchy shared by the cluster.
///
/// # Example
///
/// ```
/// use virgo_mem::{GlobalMemory, GlobalMemoryConfig};
/// use virgo_sim::Cycle;
///
/// let mut gmem = GlobalMemory::new(GlobalMemoryConfig::default_soc(8));
/// let cold = gmem.access_from_core(Cycle::new(0), 0, 0x1000, 32, false);
/// let warm = gmem.access_from_core(cold, 0, 0x1000, 32, false);
/// assert!(warm - cold < cold, "L1 hit must be much faster than the cold miss");
/// ```
#[derive(Debug, Clone)]
pub struct GlobalMemory {
    config: GlobalMemoryConfig,
    l1: Vec<Cache>,
    l2: Cache,
    dram: DramModel,
    stats: GlobalMemoryStats,
}

impl GlobalMemory {
    /// Creates the hierarchy with cold caches.
    pub fn new(config: GlobalMemoryConfig) -> Self {
        let l1 = (0..config.cores).map(|_| Cache::new(config.l1)).collect();
        GlobalMemory {
            config,
            l1,
            l2: Cache::new(config.l2),
            dram: DramModel::new(config.dram),
            stats: GlobalMemoryStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GlobalMemoryConfig {
        &self.config
    }

    /// Aggregated statistics (L1/L2); DRAM statistics are available via
    /// [`GlobalMemory::dram_stats`].
    pub fn stats(&self) -> GlobalMemoryStats {
        self.stats
    }

    /// DRAM interface statistics.
    pub fn dram_stats(&self) -> DramStats {
        self.dram.stats()
    }

    /// Serves one line-granular access from `core` (produced by the memory
    /// coalescer), returning the completion cycle.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access_from_core(
        &mut self,
        now: Cycle,
        core: usize,
        line_addr: u64,
        bytes: u64,
        write: bool,
    ) -> Cycle {
        assert!(core < self.l1.len(), "core index {core} out of range");
        self.stats.l1_accesses += 1;
        let l1_latency = self.l1[core].latency();
        if self.l1[core].access(line_addr).is_hit() {
            return now.plus(l1_latency);
        }
        self.stats.l1_misses += 1;
        self.stats.l2_accesses += 1;
        let l2_latency = self.l2.latency();
        if self.l2.access(line_addr).is_hit() {
            return now.plus(l1_latency + l2_latency);
        }
        self.stats.l2_misses += 1;

        self.dram
            .access(now.plus(l1_latency + l2_latency), bytes, write)
    }

    /// Serves a bulk DMA transfer that bypasses the L1 caches and streams
    /// through the L2 in line-sized chunks, returning the completion cycle.
    pub fn dma_access(&mut self, now: Cycle, addr: u64, bytes: u64, write: bool) -> Cycle {
        if bytes == 0 {
            return now;
        }
        self.stats.dma_bytes += bytes;
        let line = u64::from(self.config.l2.line_bytes);
        let first = addr / line;
        let last = (addr + bytes - 1) / line;
        let mut missed_bytes = 0u64;
        for l in first..=last {
            self.stats.l2_accesses += 1;
            if !self.l2.access(l * line).is_hit() {
                self.stats.l2_misses += 1;
                missed_bytes += line;
            }
        }
        let l2_time = now.plus(self.l2.latency() + (last - first + 1) / 4);
        if missed_bytes == 0 {
            l2_time
        } else {
            self.dram.access(l2_time, missed_bytes, write)
        }
    }

    /// L1 hit rate of one core, for reports and tests.
    pub fn l1_hit_rate(&self, core: usize) -> f64 {
        self.l1
            .get(core)
            .map(|c| c.stats().hit_rate())
            .unwrap_or(0.0)
    }

    /// L2 hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        self.l2.stats().hit_rate()
    }
}

impl NextActivity for GlobalMemory {
    /// The cache hierarchy and DRAM behind it are purely reactive and
    /// contribute no self-driven events.
    fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gmem() -> GlobalMemory {
        GlobalMemory::new(GlobalMemoryConfig::default_soc(2))
    }

    #[test]
    fn l1_hit_is_fast() {
        let mut g = gmem();
        let cold = g.access_from_core(Cycle::new(0), 0, 0, 32, false);
        assert!(cold.get() > 100, "cold miss reaches DRAM");
        let warm = g.access_from_core(cold, 0, 0, 32, false);
        assert_eq!(warm - cold, Cycle::new(2));
        assert_eq!(g.stats().l1_accesses, 2);
        assert_eq!(g.stats().l1_misses, 1);
    }

    #[test]
    fn l1s_are_private_per_core() {
        let mut g = gmem();
        g.access_from_core(Cycle::new(0), 0, 0, 32, false);
        // Core 1 misses its own L1 but hits in the shared L2.
        let done = g.access_from_core(Cycle::new(1000), 1, 0, 32, false);
        assert_eq!(done, Cycle::new(1000 + 2 + 12));
        assert_eq!(g.stats().l2_accesses, 2);
        assert_eq!(g.stats().l2_misses, 1);
    }

    #[test]
    fn dma_access_bypasses_l1() {
        let mut g = gmem();
        let done = g.dma_access(Cycle::new(0), 0, 1024, false);
        assert!(done.get() > 100);
        assert_eq!(g.stats().l1_accesses, 0);
        assert_eq!(g.stats().dma_bytes, 1024);
        // A later DMA of the same region hits in L2 and avoids DRAM.
        let warm = g.dma_access(done, 0, 1024, false);
        assert!(warm - done < Cycle::new(50));
    }

    #[test]
    fn zero_byte_dma_is_a_noop() {
        let mut g = gmem();
        assert_eq!(g.dma_access(Cycle::new(7), 0, 0, false), Cycle::new(7));
        assert_eq!(g.stats().dma_bytes, 0);
    }

    #[test]
    fn hit_rates_reported() {
        let mut g = gmem();
        g.access_from_core(Cycle::new(0), 0, 0, 32, false);
        g.access_from_core(Cycle::new(0), 0, 0, 32, false);
        assert!((g.l1_hit_rate(0) - 0.5).abs() < 1e-12);
        assert_eq!(g.l1_hit_rate(9), 0.0);
        assert!(g.l2_hit_rate() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_index_panics() {
        let mut g = gmem();
        let _ = g.access_from_core(Cycle::new(0), 5, 0, 32, false);
    }
}
