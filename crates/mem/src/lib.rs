//! Memory system for the Virgo GPU model.
//!
//! The components in this crate implement the cluster memory system described
//! in Section 3.2 of the paper:
//!
//! * [`SharedMemory`] — the cluster-local scratchpad with two-dimensional
//!   banking (banks × subbanks), wide matrix-unit ports that split requests
//!   into word-sized sub-requests, priority for wide requests, and separate
//!   read/write paths,
//! * [`AccumulatorMemory`] — the single-banked SRAM private to the
//!   disaggregated matrix unit,
//! * [`Cache`] / [`GlobalMemory`] / [`MemoryBackend`] — the global-memory
//!   hierarchy, split into per-cluster front-ends of per-core L1 caches and
//!   the single machine-wide back-end where the shared L2 and the
//!   address-interleaved multi-channel DRAM subsystem
//!   ([`MultiChannelDram`]) arbitrate between clusters,
//! * [`Coalescer`] — the SIMT memory coalescer added to the Vortex core
//!   (Section 3.2.3),
//! * [`DmaEngine`] — the MMIO-programmed cluster DMA engine that moves tiles
//!   between global memory, shared memory and the accumulator memory
//!   (Section 3.2.4),
//! * [`DsmFabric`] — the inter-cluster distributed-shared-memory fabric:
//!   one DSM port per cluster, Hopper-style remote scratchpad transfers
//!   with per-link bandwidth arbitration and contention accounting.
//!
//! # Modelling style
//!
//! All components use a *latency/occupancy* timing model: a request is
//! presented once, the component computes how long it occupies the relevant
//! resources (bank cycles, DRAM bus cycles, ...) given its current state, and
//! returns the completion cycle. Each component keeps event counters that the
//! SoC model later converts into energy via `virgo-energy`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accmem;
pub mod backend;
pub mod cache;
pub mod coalescer;
pub mod dma;
pub mod dram;
pub mod dsm;
pub mod global;
pub mod smem;

pub use accmem::{AccumulatorMemory, AccumulatorStats};
pub use backend::{
    BackendAttribution, ChannelContentionStats, ClusterContentionStats, MemoryBackend,
    MemoryBackendStats,
};
pub use cache::{Cache, CacheConfig, CacheStats};
pub use coalescer::{Coalescer, CoalescerStats};
pub use dma::{DmaConfig, DmaEngine, DmaStats, DmaTransfer};
pub use dram::{DramConfig, DramFaultStats, DramModel, DramStats, MultiChannelDram};
pub use dsm::{
    ClusterDsmStats, DsmConfig, DsmFabric, DsmFabricStats, DsmFaultStats, DsmLinkStats,
    DsmTopology, FabricAttribution, DSM_FLIT_BYTES,
};
pub use global::{GlobalMemory, GlobalMemoryConfig, GlobalMemoryStats};
pub use smem::{SharedMemory, SmemConfig, SmemStats};
