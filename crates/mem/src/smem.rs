//! The cluster shared memory with two-dimensional banking (Section 3.2.1).
//!
//! The shared memory must serve two very different request shapes
//! concurrently:
//!
//! * narrow 4-byte accesses from the individual SIMT lanes of every core, and
//! * wide `4·n`-byte accesses from the matrix units (where `n` is the systolic
//!   array dimension or operand-buffer width).
//!
//! The paper's design partitions the address space across *banks* (one wide
//! port each) and *subbanks* (one word each per cycle), splits wide requests
//! into word-sized sub-requests distributed over the subbanks of a single
//! bank, prioritizes wide requests so the matrix unit runs at full throughput,
//! and serializes unaligned SIMT accesses into a single lane before the
//! crossbar. This model reproduces those arbitration rules with a
//! latency/occupancy approach and keeps the counters needed for the Table 4
//! footprint comparison and the shared-memory energy numbers.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use virgo_sim::fault::{EccInjector, EccStats};
use virgo_sim::{Cycle, NextActivity, StableHash, StableHasher};

/// Configuration of the shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmemConfig {
    /// Total capacity in bytes (128 KiB in Table 2).
    pub capacity_bytes: u64,
    /// Number of banks (4 in Table 2). Each bank has one wide port.
    pub banks: u32,
    /// Number of subbanks per bank (8–16 in Table 2). Each subbank serves one
    /// 4-byte word per cycle.
    pub subbanks: u32,
    /// Access latency in cycles once a request wins arbitration.
    pub latency: u64,
}

impl StableHash for SmemConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.capacity_bytes);
        h.write_u64(u64::from(self.banks));
        h.write_u64(u64::from(self.subbanks));
        h.write_u64(self.latency);
    }
}

impl SmemConfig {
    /// The baseline Table 2 configuration: 128 KiB, 4 banks × 8 subbanks.
    pub fn default_cluster() -> Self {
        SmemConfig {
            capacity_bytes: 128 * 1024,
            banks: 4,
            subbanks: 8,
            latency: 2,
        }
    }

    /// The Virgo configuration with 16 subbanks per bank, matching the
    /// 64-byte wide accesses of the 16×16 systolic array.
    pub fn virgo_cluster() -> Self {
        SmemConfig {
            subbanks: 16,
            ..Self::default_cluster()
        }
    }

    /// A configuration with doubled banking, used for the Volta/Ampere-style
    /// baselines (Section 6.1.3 notes their shared-memory bandwidth had to be
    /// scaled 2× to avoid bottlenecking the tensor cores).
    pub fn double_banked() -> Self {
        SmemConfig {
            banks: 8,
            ..Self::default_cluster()
        }
    }

    /// Bytes covered by one bank.
    pub fn bank_bytes(&self) -> u64 {
        self.capacity_bytes / u64::from(self.banks)
    }

    /// Peak bandwidth in bytes per cycle (all banks × all subbanks × 4 B).
    pub fn peak_bytes_per_cycle(&self) -> u64 {
        u64::from(self.banks) * u64::from(self.subbanks) * 4
    }
}

/// Event counters for the shared memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmemStats {
    /// 32-bit words read (SIMT and wide ports combined).
    pub words_read: u64,
    /// 32-bit words written.
    pub words_written: u64,
    /// Bytes read — the Table 4 "shared memory read footprint".
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// SIMT warp accesses served.
    pub simt_accesses: u64,
    /// Wide (matrix unit / DMA) accesses served.
    pub wide_accesses: u64,
    /// Extra cycles spent replaying bank/subbank conflicts.
    pub conflict_cycles: u64,
    /// Unaligned SIMT lane accesses serialized before the crossbar.
    pub unaligned_serialized: u64,
}

impl SmemStats {
    /// Adds the counts of `other` into `self` (used to aggregate the
    /// per-cluster scratchpads into a machine-wide view).
    pub fn merge(&mut self, other: &SmemStats) {
        self.words_read += other.words_read;
        self.words_written += other.words_written;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.simt_accesses += other.simt_accesses;
        self.wide_accesses += other.wide_accesses;
        self.conflict_cycles += other.conflict_cycles;
        self.unaligned_serialized += other.unaligned_serialized;
    }
}

/// Completion information for one shared-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmemAccess {
    /// Cycle at which the data is available (loads) or committed (stores).
    pub done: Cycle,
    /// Cycles the access occupied its bank(s) beyond the first.
    pub conflict_cycles: u64,
}

/// One deferred wide read scheduled by a streaming producer (the batched
/// Gemmini operand FSM). Ordered by `(cycle, seq)` so draining the pending
/// heap replays reads in exactly the order the per-cycle schedule would have
/// issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct StreamRead {
    cycle: Cycle,
    seq: u64,
    addr: u64,
    bytes: u64,
}

/// The banked shared memory.
///
/// # Example
///
/// ```
/// use virgo_mem::{SharedMemory, SmemConfig};
/// use virgo_sim::Cycle;
///
/// let mut smem = SharedMemory::new(SmemConfig::default_cluster());
/// // Eight lanes reading consecutive words from one bank: conflict-free.
/// let addrs: Vec<u64> = (0..8).map(|i| i * 4).collect();
/// let access = smem.access_simt(Cycle::new(0), &addrs, false);
/// assert_eq!(access.conflict_cycles, 0);
/// assert!(smem.stats().bytes_read >= 32);
/// ```
#[derive(Debug, Clone)]
pub struct SharedMemory {
    config: SmemConfig,
    /// Per-bank cycle at which the bank's ports are next free.
    bank_busy_until: Vec<Cycle>,
    stats: SmemStats,
    /// Deterministic ECC fault injector (None on a healthy scratchpad).
    ecc: Option<EccInjector>,
    /// Future-dated wide reads enqueued by streaming producers, applied
    /// lazily (in schedule order) by [`SharedMemory::drain_stream_reads`].
    pending_reads: BinaryHeap<Reverse<StreamRead>>,
    /// Monotonic tiebreaker preserving enqueue order among same-cycle reads.
    next_stream_seq: u64,
    /// Reusable `(subbank slot, word)` scratch for [`SharedMemory::access_simt`],
    /// so the per-lane conflict model allocates nothing on the SIMT
    /// load/store hot path.
    lane_scratch: Vec<(u32, u64)>,
}

impl SharedMemory {
    /// Creates an idle shared memory.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero banks or subbanks.
    pub fn new(config: SmemConfig) -> Self {
        assert!(config.banks > 0, "shared memory needs at least one bank");
        assert!(
            config.subbanks > 0,
            "shared memory needs at least one subbank"
        );
        SharedMemory {
            config,
            bank_busy_until: vec![Cycle::ZERO; config.banks as usize],
            stats: SmemStats::default(),
            ecc: None,
            pending_reads: BinaryHeap::new(),
            next_stream_seq: 0,
            lane_scratch: Vec::new(),
        }
    }

    /// Installs a deterministic ECC fault injector; subsequent accesses pay
    /// the correct/detect penalties its fault windows dictate. Without one
    /// the scratchpad behaves exactly as before.
    pub fn set_ecc(&mut self, ecc: EccInjector) {
        self.ecc = Some(ecc);
    }

    /// ECC injected/detected/corrected counters (all zero without an
    /// injector).
    pub fn ecc_stats(&self) -> EccStats {
        self.ecc
            .as_ref()
            .map(EccInjector::stats)
            .unwrap_or_default()
    }

    /// ECC penalty for one access serviced at `now` (zero without an
    /// injector or outside every fault window).
    fn ecc_penalty(&mut self, now: Cycle) -> u64 {
        match self.ecc.as_mut() {
            Some(ecc) => ecc.observe(now.get()),
            None => 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SmemConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SmemStats {
        self.stats
    }

    /// Bank index holding `addr`.
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr / self.config.bank_bytes()) % u64::from(self.config.banks)) as usize
    }

    /// Subbank index within a bank holding `addr`.
    pub fn subbank_of(&self, addr: u64) -> usize {
        ((addr / 4) % u64::from(self.config.subbanks)) as usize
    }

    /// Serves one warp's SIMT lane accesses (4 bytes per lane).
    ///
    /// Lanes mapping to the same subbank of the same bank with different word
    /// addresses conflict and replay over extra cycles. Unaligned lane
    /// addresses are serialized one per cycle (Section 3.2.1's area
    /// optimization).
    pub fn access_simt(&mut self, now: Cycle, lane_addrs: &[u64], write: bool) -> SmemAccess {
        self.stats.simt_accesses += 1;
        if lane_addrs.is_empty() {
            return SmemAccess {
                done: now.plus(self.config.latency),
                conflict_cycles: 0,
            };
        }

        // Distinct (subbank slot, word) pairs for the aligned lanes: sorting
        // and deduplicating the reusable scratch yields the same distinct set
        // per slot as a per-slot dedup, without allocating per access.
        let mut scratch = std::mem::take(&mut self.lane_scratch);
        scratch.clear();
        let mut unaligned = 0u64;
        for &addr in lane_addrs {
            if addr % 4 != 0 {
                unaligned += 1;
                continue;
            }
            let slot =
                (self.bank_of(addr) * self.config.subbanks as usize + self.subbank_of(addr)) as u32;
            scratch.push((slot, addr / 4));
        }
        self.stats.unaligned_serialized += unaligned;
        scratch.sort_unstable();
        scratch.dedup();

        // Conflict-free case: each subbank serves one word per cycle, so the
        // extra cycles are the worst-case subbank queue depth minus one, plus
        // one cycle per serialized unaligned access. The queue depth of a slot
        // is the length of its (now contiguous) run in the scratch.
        let mut max_depth = 0u64;
        let mut run = 0u64;
        let mut prev_slot = u32::MAX;
        for &(slot, _) in &scratch {
            if slot == prev_slot {
                run += 1;
            } else {
                prev_slot = slot;
                run = 1;
            }
            max_depth = max_depth.max(run);
        }
        self.lane_scratch = scratch;
        let conflict_cycles = max_depth.saturating_sub(1) + unaligned;

        // The access occupies every bank it touches. Duplicate banks fold to
        // the same max on the first pass and write the same value on the
        // second, so no dedup is needed.
        let mut start = now;
        for &addr in lane_addrs {
            start = start.max(self.bank_busy_until[self.bank_of(addr)]);
        }
        let busy_cycles = 1 + conflict_cycles;
        for &addr in lane_addrs {
            let bank = self.bank_of(addr);
            self.bank_busy_until[bank] = start.plus(busy_cycles);
        }

        let words = lane_addrs.len() as u64;
        let bytes = words * 4;
        if write {
            self.stats.words_written += words;
            self.stats.bytes_written += bytes;
        } else {
            self.stats.words_read += words;
            self.stats.bytes_read += bytes;
        }
        self.stats.conflict_cycles += conflict_cycles;

        let ecc = self.ecc_penalty(now);
        SmemAccess {
            done: start.plus(busy_cycles + self.config.latency + ecc),
            conflict_cycles,
        }
    }

    /// Serves one wide access from a matrix unit or the DMA engine.
    ///
    /// The request is split into 4-byte sub-requests distributed over the
    /// subbanks of the bank holding `addr`; `subbanks` words are served per
    /// cycle. Wide requests have priority at the bank, which the
    /// latency/occupancy model approximates by letting them claim the bank
    /// from its current busy point.
    pub fn access_wide(&mut self, now: Cycle, addr: u64, bytes: u64, write: bool) -> SmemAccess {
        self.stats.wide_accesses += 1;
        let words = bytes.div_ceil(4).max(1);
        let cycles = words.div_ceil(u64::from(self.config.subbanks)).max(1);
        let bank = self.bank_of(addr);
        let start = now.max(self.bank_busy_until[bank]);
        self.bank_busy_until[bank] = start.plus(cycles);

        if write {
            self.stats.words_written += words;
            self.stats.bytes_written += words * 4;
        } else {
            self.stats.words_read += words;
            self.stats.bytes_read += words * 4;
        }

        let ecc = self.ecc_penalty(now);
        SmemAccess {
            done: start.plus(cycles + self.config.latency + ecc),
            conflict_cycles: cycles - 1,
        }
    }

    /// Cycle at which `bank` is next free; used by tests and by the matrix
    /// unit FSM to pace its streaming.
    pub fn bank_free_at(&self, bank: usize) -> Cycle {
        self.bank_busy_until[bank]
    }

    /// Enqueues a wide read to be served at the (usually future) cycle `at`.
    ///
    /// The batched Gemmini streaming FSM precomputes its whole per-block read
    /// schedule on block entry and registers each read here instead of issuing
    /// one `access_wide` per tick. The reads are *not* applied eagerly: bank
    /// occupancy and ECC injection are order-sensitive, so they stay pending
    /// until [`SharedMemory::drain_stream_reads`] replays them — each at its
    /// true scheduled cycle, interleaved correctly with the DMA engine's and
    /// the cores' same-window accesses.
    pub fn stream_read(&mut self, at: Cycle, addr: u64, bytes: u64) {
        self.pending_reads.push(Reverse(StreamRead {
            cycle: at,
            seq: self.next_stream_seq,
            addr,
            bytes,
        }));
        self.next_stream_seq += 1;
    }

    /// Applies every pending stream read scheduled before `now` (or at `now`
    /// too, when `inclusive`), in `(cycle, enqueue-order)` order, exactly as
    /// the per-cycle schedule would have issued them.
    ///
    /// Callers bracket each sub-tick with the right cutoff: reads strictly
    /// before the current cycle are flushed ahead of the DMA engine's tick
    /// (they were issued on earlier cycles in the reference schedule), while
    /// reads *at* the current cycle land after it, matching the device tick
    /// order of the naive loop.
    pub fn drain_stream_reads(&mut self, now: Cycle, inclusive: bool) {
        while let Some(Reverse(top)) = self.pending_reads.peek() {
            let due = top.cycle < now || (inclusive && top.cycle == now);
            if !due {
                break;
            }
            let Reverse(read) = self.pending_reads.pop().expect("peeked entry exists");
            self.access_wide(read.cycle, read.addr, read.bytes, false);
        }
    }

    /// Number of enqueued stream reads not yet applied.
    pub fn stream_reads_pending(&self) -> usize {
        self.pending_reads.len()
    }
}

impl NextActivity for SharedMemory {
    /// The shared memory is purely reactive: its banks serve requests from
    /// cores, tensor units and the DMA engine but never initiate work, so it
    /// contributes no self-driven events to the fast-forward horizon.
    ///
    /// Unconditional `None` stays sound even though the pending stream-read
    /// queue holds future-dated reads: each of those reads belongs to a
    /// matrix unit whose own `next_activity` is at or before the end of the
    /// block that scheduled them, so the producing unit keeps the cluster's
    /// device tick (which drains the queue) scheduled for as long as reads
    /// are outstanding. The scratchpad never needs to wake anyone itself.
    fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smem() -> SharedMemory {
        SharedMemory::new(SmemConfig::default_cluster())
    }

    #[test]
    fn geometry_of_default_config() {
        let cfg = SmemConfig::default_cluster();
        assert_eq!(cfg.bank_bytes(), 32 * 1024);
        assert_eq!(cfg.peak_bytes_per_cycle(), 4 * 8 * 4);
        let s = SharedMemory::new(cfg);
        assert_eq!(s.bank_of(0), 0);
        assert_eq!(s.bank_of(32 * 1024), 1);
        assert_eq!(s.bank_of(127 * 1024), 3);
        assert_eq!(s.subbank_of(0), 0);
        assert_eq!(s.subbank_of(4), 1);
        assert_eq!(s.subbank_of(32), 0);
    }

    #[test]
    fn conflict_free_simt_access_takes_one_bank_cycle() {
        let mut s = smem();
        let addrs: Vec<u64> = (0..8).map(|i| i * 4).collect();
        let a = s.access_simt(Cycle::new(0), &addrs, false);
        assert_eq!(a.conflict_cycles, 0);
        assert_eq!(a.done, Cycle::new(1 + 2));
    }

    #[test]
    fn same_subbank_accesses_conflict() {
        let mut s = smem();
        // All lanes hit subbank 0 of bank 0 with different words
        // (stride = subbanks × 4 bytes = 32).
        let addrs: Vec<u64> = (0..8).map(|i| i * 32).collect();
        let a = s.access_simt(Cycle::new(0), &addrs, false);
        assert_eq!(a.conflict_cycles, 7);
        assert_eq!(s.stats().conflict_cycles, 7);
    }

    #[test]
    fn broadcast_of_same_word_does_not_conflict() {
        let mut s = smem();
        let addrs = vec![64u64; 8];
        let a = s.access_simt(Cycle::new(0), &addrs, false);
        assert_eq!(a.conflict_cycles, 0);
    }

    #[test]
    fn unaligned_accesses_serialize() {
        let mut s = smem();
        let addrs = vec![1u64, 5, 9];
        let a = s.access_simt(Cycle::new(0), &addrs, false);
        assert_eq!(a.conflict_cycles, 3);
        assert_eq!(s.stats().unaligned_serialized, 3);
    }

    #[test]
    fn wide_access_uses_subbank_parallelism() {
        let mut s = smem();
        // 64 bytes = 16 words over 8 subbanks = 2 bank cycles.
        let a = s.access_wide(Cycle::new(0), 0, 64, false);
        assert_eq!(a.conflict_cycles, 1);
        assert_eq!(a.done, Cycle::new(2 + 2));
        assert_eq!(s.stats().wide_accesses, 1);
        assert_eq!(s.stats().words_read, 16);
    }

    #[test]
    fn wide_and_simt_accesses_to_same_bank_serialize() {
        let mut s = smem();
        s.access_wide(Cycle::new(0), 0, 128, false); // occupies bank 0 for 4 cycles
        let addrs: Vec<u64> = (0..8).map(|i| i * 4).collect();
        let a = s.access_simt(Cycle::new(0), &addrs, false);
        assert!(
            a.done.get() > 3,
            "SIMT access must wait for the wide access"
        );
    }

    #[test]
    fn accesses_to_different_banks_proceed_in_parallel() {
        let mut s = smem();
        s.access_wide(Cycle::new(0), 0, 128, false);
        // Bank 1 starts at 32 KiB and is still free.
        let a = s.access_wide(Cycle::new(0), 32 * 1024, 32, false);
        assert_eq!(a.done, Cycle::new(1 + 2));
    }

    #[test]
    fn read_footprint_accumulates_bytes() {
        let mut s = smem();
        s.access_wide(Cycle::new(0), 0, 256, false);
        s.access_wide(Cycle::new(0), 0, 256, true);
        assert_eq!(s.stats().bytes_read, 256);
        assert_eq!(s.stats().bytes_written, 256);
    }

    #[test]
    fn virgo_config_serves_64_bytes_in_one_cycle() {
        let mut s = SharedMemory::new(SmemConfig::virgo_cluster());
        let a = s.access_wide(Cycle::new(0), 0, 64, false);
        assert_eq!(a.conflict_cycles, 0);
    }

    #[test]
    fn empty_simt_access_is_harmless() {
        let mut s = smem();
        let a = s.access_simt(Cycle::new(5), &[], false);
        assert_eq!(a.done, Cycle::new(7));
        assert_eq!(s.stats().words_read, 0);
    }

    #[test]
    fn without_ecc_injector_stats_stay_zero() {
        let mut s = smem();
        s.access_wide(Cycle::new(0), 0, 64, false);
        assert_eq!(s.ecc_stats(), EccStats::default());
    }

    #[test]
    fn ecc_injector_charges_penalties_and_counts_events() {
        use virgo_sim::fault::{FaultKind, FaultPlan, PERMANENT};
        let plan = FaultPlan::seeded(42).with_event(
            FaultKind::EccSingleBit {
                cluster: 0,
                mean_access_gap: 2,
            },
            0,
            PERMANENT,
        );
        let mut s = smem();
        s.set_ecc(plan.ecc_injector(0).expect("cluster 0 has an ECC window"));
        // With mean gap 2, a few hundred accesses must hit several upsets;
        // every single-bit upset is detected *and* corrected.
        for i in 0..200u64 {
            s.access_wide(Cycle::new(i * 10), 0, 64, false);
        }
        let stats = s.ecc_stats();
        assert!(stats.injected > 50, "mean gap 2 ⇒ dense upsets");
        assert_eq!(stats.detected, stats.injected);
        assert_eq!(stats.corrected, stats.injected);
    }

    #[test]
    fn stream_reads_apply_lazily_in_schedule_order() {
        // Two deferred reads to bank 0 plus one eager wide access between
        // their scheduled cycles must produce exactly the state of issuing
        // all three eagerly in cycle order.
        let mut lazy = smem();
        lazy.stream_read(Cycle::new(2), 0, 64);
        lazy.stream_read(Cycle::new(5), 32, 64);
        assert_eq!(lazy.stream_reads_pending(), 2);
        // Nothing applied yet.
        assert_eq!(lazy.stats().wide_accesses, 0);
        lazy.drain_stream_reads(Cycle::new(3), false);
        assert_eq!(lazy.stream_reads_pending(), 1);
        lazy.access_wide(Cycle::new(3), 16, 64, false);
        lazy.drain_stream_reads(Cycle::new(5), true);
        assert_eq!(lazy.stream_reads_pending(), 0);

        let mut eager = smem();
        eager.access_wide(Cycle::new(2), 0, 64, false);
        eager.access_wide(Cycle::new(3), 16, 64, false);
        eager.access_wide(Cycle::new(5), 32, 64, false);

        assert_eq!(lazy.stats(), eager.stats());
        assert_eq!(lazy.bank_free_at(0), eager.bank_free_at(0));
    }

    #[test]
    fn drain_cutoff_is_exclusive_unless_inclusive() {
        let mut s = smem();
        s.stream_read(Cycle::new(4), 0, 64);
        s.drain_stream_reads(Cycle::new(4), false);
        assert_eq!(s.stream_reads_pending(), 1, "exclusive cutoff keeps t=now");
        s.drain_stream_reads(Cycle::new(4), true);
        assert_eq!(s.stream_reads_pending(), 0);
        assert_eq!(s.stats().wide_accesses, 1);
    }

    #[test]
    fn same_cycle_stream_reads_keep_enqueue_order() {
        // Both reads land on bank 0 at cycle 0: the first enqueued must chain
        // first, which is observable through the final bank-busy horizon.
        let mut s = smem();
        s.stream_read(Cycle::new(0), 0, 128);
        s.stream_read(Cycle::new(0), 4, 32);
        s.drain_stream_reads(Cycle::new(0), true);
        // 128 B = 32 words / 8 subbanks = 4 cycles, then 32 B = 1 more.
        assert_eq!(s.bank_free_at(0), Cycle::new(5));
        assert_eq!(s.stats().wide_accesses, 2);
    }

    #[test]
    fn ecc_penalty_is_deterministic_for_a_seed() {
        use virgo_sim::fault::{FaultKind, FaultPlan};
        let plan = FaultPlan::seeded(7).with_event(
            FaultKind::EccDoubleBit {
                cluster: 2,
                mean_access_gap: 3,
            },
            0,
            10_000,
        );
        let run = |plan: &FaultPlan| {
            let mut s = smem();
            s.set_ecc(plan.ecc_injector(2).unwrap());
            let dones: Vec<Cycle> = (0..64u64)
                .map(|i| s.access_wide(Cycle::new(i * 16), 0, 32, false).done)
                .collect();
            (dones, s.ecc_stats())
        };
        let (a_dones, a_stats) = run(&plan);
        let (b_dones, b_stats) = run(&plan);
        assert_eq!(a_dones, b_dones);
        assert_eq!(a_stats, b_stats);
        assert!(a_stats.injected > 0);
        assert_eq!(a_stats.corrected, 0, "double-bit upsets are uncorrectable");
    }
}
