//! `virgo-serve`: a request-level, multi-tenant serving simulator on top of
//! the Virgo job table.
//!
//! The kernel-level crates answer "how many cycles does this GEMM take?".
//! This crate answers the datacenter question layered above it: given
//! tenants issuing streams of GEMM and attention requests against one
//! machine, what tail latency, goodput and energy-per-request does a
//! scheduling policy deliver? The pieces:
//!
//! * [`TenantSpec`] / [`generate_trace`] — deterministic Poisson-like
//!   request streams (seeded [`virgo_sim::SplitMix64`], exponential
//!   inter-arrivals via the inverse CDF) over paper workload shapes,
//! * [`ArbitrationPolicy`] — FIFO vs shortest-job vs tenant-fair ordering
//!   of the pending queue, and [`BatchingMode`] — serial whole-machine
//!   occupancy vs continuous batching onto free cluster subsets,
//! * [`Server`] — the admission loop driving a [`virgo::JobTable`]
//!   session, so concurrent requests contend for shared L2/DRAM exactly
//!   like concurrent kernels do,
//! * [`ServeReport`] — p50/p99/p999 latency, goodput,
//!   energy-per-request (active energy plus the
//!   [`virgo_energy::StaticPowerModel`] busy/idle split) and per-tenant
//!   slices.
//!
//! Everything is deterministic: the same trace seed, machine configuration
//! and policy reproduce the same report bit-for-bit, in either
//! [`virgo::SimMode`], with or without a replayed
//! [`virgo::GpuConfig::with_faults`] plan.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod policy;
pub mod report;
pub mod request;
pub mod server;

pub use policy::{ArbitrationPolicy, BatchingMode};
pub use report::{RequestOutcome, ServeReport, TenantSlice};
pub use request::{generate_trace, Request, RequestClass, TenantSpec};
pub use server::{ServeConfig, Server};
