//! Admission arbitration: which pending request gets the next free clusters.

/// How the server orders the pending queue when cluster slots free up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArbitrationPolicy {
    /// Strict arrival order (head-of-line requests first).
    Fifo,
    /// Cheapest request first, by the class's MAC count — the classic
    /// shortest-job-first latency optimization, at the cost of starving
    /// large requests under sustained load.
    ShortestJob,
    /// The tenant with the fewest admissions so far goes first, so one
    /// high-rate tenant cannot monopolize the machine.
    TenantFair,
}

impl ArbitrationPolicy {
    /// All policies, in report order.
    pub fn all() -> [ArbitrationPolicy; 3] {
        [
            ArbitrationPolicy::Fifo,
            ArbitrationPolicy::ShortestJob,
            ArbitrationPolicy::TenantFair,
        ]
    }

    /// A short identifier (`"fifo"`, `"sjf"`, `"fair"`).
    pub fn name(self) -> &'static str {
        match self {
            ArbitrationPolicy::Fifo => "fifo",
            ArbitrationPolicy::ShortestJob => "sjf",
            ArbitrationPolicy::TenantFair => "fair",
        }
    }
}

impl std::fmt::Display for ArbitrationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether requests share the machine or take it whole.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchingMode {
    /// One request at a time, on every cluster — the "one kernel owns the
    /// whole GPU" baseline the job-table refactor replaces.
    Serial,
    /// Continuous batching: every pending request that fits in the free
    /// cluster slots is admitted immediately, so requests from different
    /// tenants run concurrently on disjoint subsets.
    Continuous,
}

impl BatchingMode {
    /// A short identifier (`"serial"`, `"continuous"`).
    pub fn name(self) -> &'static str {
        match self {
            BatchingMode::Serial => "serial",
            BatchingMode::Continuous => "continuous",
        }
    }
}

impl std::fmt::Display for BatchingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
