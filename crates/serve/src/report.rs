//! Request-level serving metrics: tail latency, goodput and
//! energy-per-request.

use virgo::SimReport;
use virgo_energy::{EnergyLedger, StaticPowerModel};
use virgo_sim::{Cycle, Frequency};

use crate::policy::{ArbitrationPolicy, BatchingMode};

/// The fate of one request: where it waited, where it ran, what it cost.
#[derive(Debug)]
pub struct RequestOutcome {
    /// The request's trace id.
    pub id: u64,
    /// The issuing tenant.
    pub tenant: String,
    /// The workload label (see [`crate::RequestClass::label`]).
    pub label: String,
    /// Absolute cycle the request arrived.
    pub arrival: u64,
    /// Absolute cycle the request was admitted onto clusters.
    pub admitted: u64,
    /// Absolute cycle the request retired (or was evicted).
    pub retired: u64,
    /// Number of cluster slots the request ran on.
    pub clusters: usize,
    /// True when the residency budget expired before the kernel finished.
    pub timed_out: bool,
    /// The request's kernel-level report; `None` for timed-out requests.
    pub report: Option<SimReport>,
}

impl RequestOutcome {
    /// End-to-end latency: arrival to retirement, queueing included.
    pub fn latency(&self) -> u64 {
        self.retired - self.arrival
    }

    /// Cycles spent waiting in the pending queue.
    pub fn queue_delay(&self) -> u64 {
        self.admitted - self.arrival
    }

    /// Cycles spent resident on the machine.
    pub fn service(&self) -> u64 {
        self.retired - self.admitted
    }
}

/// Per-tenant slice of a [`ServeReport`].
#[derive(Debug)]
pub struct TenantSlice {
    /// The tenant name.
    pub tenant: String,
    /// Requests that finished inside their budget.
    pub completed: usize,
    /// Requests evicted on budget expiry.
    pub timed_out: usize,
    /// Median end-to-end latency over completed requests (0 when none).
    pub p50_latency_cycles: u64,
    /// 99th-percentile end-to-end latency (0 when none completed).
    pub p99_latency_cycles: u64,
    /// Active energy of the tenant's completed requests, in millijoules.
    pub active_energy_mj: f64,
}

/// The aggregate result of one serving run.
#[derive(Debug)]
pub struct ServeReport {
    /// The arbitration policy the run used.
    pub policy: ArbitrationPolicy,
    /// Serial whole-machine vs continuous batching.
    pub batching: BatchingMode,
    /// Cluster slots of the machine.
    pub clusters: u32,
    /// Last retirement cycle of the run (the makespan).
    pub makespan_cycles: u64,
    /// Every request's fate, in retirement order.
    pub outcomes: Vec<RequestOutcome>,
    /// Median end-to-end latency over completed requests.
    pub p50_latency_cycles: u64,
    /// 99th-percentile end-to-end latency.
    pub p99_latency_cycles: u64,
    /// 99.9th-percentile end-to-end latency.
    pub p999_latency_cycles: u64,
    /// Completed requests per second of simulated time at the SoC clock.
    pub goodput_rps: f64,
    /// Event-proportional (active) energy over completed requests, mJ.
    pub active_energy_mj: f64,
    /// Static energy over the whole makespan — busy rate while a cluster is
    /// owned by a request, idle rate otherwise — in mJ.
    pub static_energy_mj: f64,
    /// `(active + static) / completed`, in mJ; 0 when nothing completed.
    pub energy_per_request_mj: f64,
    /// Cluster-cycles spent owned by a resident request.
    pub busy_cluster_cycles: u64,
    /// Cluster-cycles spent with the slot free.
    pub idle_cluster_cycles: u64,
    /// Per-tenant slices, sorted by tenant name.
    pub tenants: Vec<TenantSlice>,
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl ServeReport {
    /// Builds the aggregate report from per-request outcomes. The static
    /// energy split is computed through the [`EnergyLedger`] cluster-cycle
    /// side-channel and [`StaticPowerModel::default_16nm`] at the SoC clock.
    pub fn new(
        policy: ArbitrationPolicy,
        batching: BatchingMode,
        clusters: u32,
        outcomes: Vec<RequestOutcome>,
        makespan_cycles: u64,
    ) -> Self {
        let mut latencies: Vec<u64> = outcomes
            .iter()
            .filter(|o| !o.timed_out)
            .map(RequestOutcome::latency)
            .collect();
        latencies.sort_unstable();
        let completed = latencies.len();

        let busy_cluster_cycles: u64 = outcomes
            .iter()
            .map(|o| o.service() * o.clusters as u64)
            .sum();
        let idle_cluster_cycles =
            (makespan_cycles * u64::from(clusters)).saturating_sub(busy_cluster_cycles);
        let mut ledger = EnergyLedger::new();
        ledger.record_cluster_cycles(busy_cluster_cycles, idle_cluster_cycles);
        let static_energy_mj =
            StaticPowerModel::default_16nm().ledger_energy_pj(&ledger, Frequency::VIRGO_SOC) * 1e-9;
        let active_energy_mj: f64 = outcomes
            .iter()
            .filter_map(|o| o.report.as_ref())
            .map(SimReport::total_energy_mj)
            .sum();
        let energy_per_request_mj = if completed > 0 {
            (active_energy_mj + static_energy_mj) / completed as f64
        } else {
            0.0
        };
        let seconds = Frequency::VIRGO_SOC.cycles_to_seconds(Cycle::new(makespan_cycles));
        let goodput_rps = if seconds > 0.0 {
            completed as f64 / seconds
        } else {
            0.0
        };

        let mut names: Vec<&str> = outcomes.iter().map(|o| o.tenant.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        let tenants = names
            .iter()
            .map(|&name| {
                let mut lat: Vec<u64> = outcomes
                    .iter()
                    .filter(|o| o.tenant == name && !o.timed_out)
                    .map(RequestOutcome::latency)
                    .collect();
                lat.sort_unstable();
                TenantSlice {
                    tenant: name.to_string(),
                    completed: lat.len(),
                    timed_out: outcomes
                        .iter()
                        .filter(|o| o.tenant == name && o.timed_out)
                        .count(),
                    p50_latency_cycles: percentile(&lat, 0.50),
                    p99_latency_cycles: percentile(&lat, 0.99),
                    active_energy_mj: outcomes
                        .iter()
                        .filter(|o| o.tenant == name)
                        .filter_map(|o| o.report.as_ref())
                        .map(SimReport::total_energy_mj)
                        .sum(),
                }
            })
            .collect();

        ServeReport {
            policy,
            batching,
            clusters,
            makespan_cycles,
            p50_latency_cycles: percentile(&latencies, 0.50),
            p99_latency_cycles: percentile(&latencies, 0.99),
            p999_latency_cycles: percentile(&latencies, 0.999),
            goodput_rps,
            active_energy_mj,
            static_energy_mj,
            energy_per_request_mj,
            busy_cluster_cycles,
            idle_cluster_cycles,
            tenants,
            outcomes,
        }
    }

    /// Requests that finished inside their budget.
    pub fn completed(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.timed_out).count()
    }

    /// Requests evicted on budget expiry.
    pub fn timed_out(&self) -> usize {
        self.outcomes.iter().filter(|o| o.timed_out).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u64, tenant: &str, arrival: u64, admitted: u64, retired: u64) -> RequestOutcome {
        RequestOutcome {
            id,
            tenant: tenant.to_string(),
            label: "gemm:128x128x128".to_string(),
            arrival,
            admitted,
            retired,
            clusters: 1,
            timed_out: false,
            report: None,
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 0.999), 100);
        assert_eq!(percentile(&[42], 0.999), 42);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn report_splits_busy_and_idle_cluster_cycles() {
        let outcomes = vec![
            outcome(0, "a", 0, 0, 1_000),
            outcome(1, "b", 0, 1_000, 3_000),
        ];
        let report = ServeReport::new(
            ArbitrationPolicy::Fifo,
            BatchingMode::Serial,
            2,
            outcomes,
            3_000,
        );
        // 1000 + 2000 busy cluster-cycles on a 2-cluster, 3000-cycle run.
        assert_eq!(report.busy_cluster_cycles, 3_000);
        assert_eq!(report.idle_cluster_cycles, 3_000);
        assert!(report.static_energy_mj > 0.0);
        assert_eq!(report.completed(), 2);
        assert_eq!(report.timed_out(), 0);
        assert!(report.goodput_rps > 0.0);
        // Latencies 1000 and 3000: the median picks the lower.
        assert_eq!(report.p50_latency_cycles, 1_000);
        assert_eq!(report.p99_latency_cycles, 3_000);
        // No active energy (no kernel reports), so per-request energy is
        // the static share alone.
        assert!((report.energy_per_request_mj - report.static_energy_mj / 2.0).abs() < 1e-12);
    }

    #[test]
    fn timed_out_requests_are_excluded_from_latency_and_goodput() {
        let mut evicted = outcome(0, "a", 0, 0, 10_000);
        evicted.timed_out = true;
        let report = ServeReport::new(
            ArbitrationPolicy::Fifo,
            BatchingMode::Continuous,
            1,
            vec![evicted, outcome(1, "a", 0, 0, 2_000)],
            10_000,
        );
        assert_eq!(report.completed(), 1);
        assert_eq!(report.timed_out(), 1);
        assert_eq!(report.p99_latency_cycles, 2_000);
        // The evicted request still occupied its cluster: busy time counts.
        assert_eq!(report.busy_cluster_cycles, 12_000);
        let slice = &report.tenants[0];
        assert_eq!(slice.completed, 1);
        assert_eq!(slice.timed_out, 1);
    }
}
