//! Multi-tenant request streams: who asks for what, when.
//!
//! A serving trace is a merged sequence of [`Request`]s from several
//! [`TenantSpec`]s, each an independent Poisson-like arrival process over a
//! set of workload classes. Generation is fully deterministic: every tenant
//! derives its own [`SplitMix64`] stream from the trace seed, inter-arrival
//! gaps come from the exponential inverse CDF over that stream, and the
//! merged trace is sorted by `(arrival, tenant, sequence)`. The same seed
//! always yields the byte-identical trace, so serving experiments are
//! replayable — including against a fault plan installed on the machine.

use virgo::GpuConfig;
use virgo_isa::Kernel;
use virgo_kernels::{build_flash_attention, build_gemm, AttentionShape, GemmShape};
use virgo_sim::SplitMix64;

/// The workload class of one request: which kernel family and shape the
/// tenant is asking the machine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestClass {
    /// One GEMM of the given shape (Section 6.1 workloads).
    Gemm(GemmShape),
    /// One FlashAttention-3 forward pass (Section 6.2 workloads).
    Attention(AttentionShape),
}

impl RequestClass {
    /// Total multiply-accumulates of the request — the cost estimate the
    /// shortest-job arbitration policy orders by.
    pub fn cost_macs(&self) -> u64 {
        match self {
            RequestClass::Gemm(shape) => shape.mac_ops(),
            RequestClass::Attention(shape) => shape.gemm_mac_ops(),
        }
    }

    /// A short label such as `"gemm:256x256x256"`.
    pub fn label(&self) -> String {
        match self {
            RequestClass::Gemm(shape) => format!("gemm:{shape}"),
            RequestClass::Attention(shape) => format!("attn:{shape}"),
        }
    }

    /// Builds the kernel for this request against `config` — normally the
    /// machine configuration restricted to the request's cluster allocation
    /// via [`GpuConfig::with_allocation`].
    pub fn build(&self, config: &GpuConfig) -> Kernel {
        match self {
            RequestClass::Gemm(shape) => build_gemm(config, *shape),
            RequestClass::Attention(shape) => build_flash_attention(config, *shape),
        }
    }
}

impl std::fmt::Display for RequestClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// One serving request: a tenant asking for a kernel at an absolute cycle.
#[derive(Debug, Clone)]
pub struct Request {
    /// Trace-unique id, assigned in merged arrival order.
    pub id: u64,
    /// Name of the issuing tenant.
    pub tenant: String,
    /// The workload the request runs.
    pub class: RequestClass,
    /// Absolute machine cycle the request arrives.
    pub arrival: u64,
    /// Cluster slots the request asks for (clamped to the machine size at
    /// admission).
    pub clusters: u32,
    /// Residency budget in cycles before the request is evicted as timed
    /// out.
    pub budget: u64,
}

/// One tenant's arrival process: rate, workload mix and resource ask.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name, used for per-tenant report slices and fair arbitration.
    pub name: String,
    /// Mean inter-arrival gap in cycles (the exponential distribution's
    /// mean; smaller = higher offered load).
    pub mean_interarrival: u64,
    /// Workload classes, drawn uniformly per request.
    pub classes: Vec<RequestClass>,
    /// Cluster slots each request asks for.
    pub clusters_per_request: u32,
    /// Residency budget per request, in cycles.
    pub budget: u64,
}

impl TenantSpec {
    /// A tenant issuing the smallest paper GEMM on one cluster with a
    /// generous budget; tune with the `with_*` builders.
    pub fn new(name: &str, mean_interarrival: u64) -> Self {
        TenantSpec {
            name: name.to_string(),
            mean_interarrival: mean_interarrival.max(1),
            classes: vec![RequestClass::Gemm(GemmShape::square(128))],
            clusters_per_request: 1,
            budget: 50_000_000,
        }
    }

    /// Replaces the workload mix. Must not be empty.
    #[must_use]
    pub fn with_classes(mut self, classes: Vec<RequestClass>) -> Self {
        assert!(!classes.is_empty(), "a tenant needs at least one class");
        self.classes = classes;
        self
    }

    /// Sets the cluster count each request asks for.
    #[must_use]
    pub fn with_clusters(mut self, clusters: u32) -> Self {
        self.clusters_per_request = clusters.max(1);
        self
    }

    /// Sets the per-request residency budget.
    #[must_use]
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget.max(1);
        self
    }
}

/// A uniform draw in the half-open unit interval `(0, 1]` — open at zero so
/// the exponential inverse CDF below never takes `ln(0)`.
fn unit_open(rng: &mut SplitMix64) -> f64 {
    ((rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64
}

/// One exponential inter-arrival gap with the given mean, in whole cycles
/// (at least 1, so arrivals within a tenant are strictly increasing).
fn exponential_gap(rng: &mut SplitMix64, mean: u64) -> u64 {
    let sample = -unit_open(rng).ln() * mean as f64;
    1 + sample.min(u64::MAX as f64 / 2.0) as u64
}

/// Generates the merged trace: `per_tenant` requests from every tenant,
/// sorted by arrival (ties broken by tenant order, then issue order) with
/// ids assigned in that merged order.
pub fn generate_trace(tenants: &[TenantSpec], per_tenant: usize, seed: u64) -> Vec<Request> {
    let mut raw: Vec<(u64, usize, usize, Request)> = Vec::new();
    for (t_idx, tenant) in tenants.iter().enumerate() {
        // Decorrelate tenant streams without hashing: SplitMix64's output
        // function scrambles any additive seed schedule.
        let mut rng =
            SplitMix64::new(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(1 + t_idx as u64)));
        let mut arrival = 0u64;
        for seq in 0..per_tenant {
            arrival = arrival.saturating_add(exponential_gap(&mut rng, tenant.mean_interarrival));
            let class = tenant.classes[rng.next_below(tenant.classes.len() as u64) as usize];
            raw.push((
                arrival,
                t_idx,
                seq,
                Request {
                    id: 0,
                    tenant: tenant.name.clone(),
                    class,
                    arrival,
                    clusters: tenant.clusters_per_request,
                    budget: tenant.budget,
                },
            ));
        }
    }
    raw.sort_by_key(|(arrival, t_idx, seq, _)| (*arrival, *t_idx, *seq));
    raw.into_iter()
        .enumerate()
        .map(|(id, (_, _, _, mut req))| {
            req.id = id as u64;
            req
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenants() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new("a", 10_000),
            TenantSpec::new("b", 25_000)
                .with_classes(vec![RequestClass::Gemm(GemmShape::square(256))]),
        ]
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let t = two_tenants();
        let x = generate_trace(&t, 16, 7);
        let y = generate_trace(&t, 16, 7);
        assert_eq!(x.len(), 32);
        for (a, b) in x.iter().zip(&y) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.tenant, b.tenant);
            assert_eq!(a.class, b.class);
        }
        let z = generate_trace(&t, 16, 8);
        assert!(x.iter().zip(&z).any(|(a, b)| a.arrival != b.arrival));
    }

    #[test]
    fn trace_is_sorted_with_sequential_ids() {
        let trace = generate_trace(&two_tenants(), 8, 42);
        for (i, pair) in trace.windows(2).enumerate() {
            assert!(pair[0].arrival <= pair[1].arrival, "at {i}");
        }
        for (i, req) in trace.iter().enumerate() {
            assert_eq!(req.id, i as u64);
            assert!(req.arrival > 0);
        }
    }

    #[test]
    fn higher_rate_means_denser_arrivals() {
        let fast = generate_trace(&[TenantSpec::new("fast", 1_000)], 64, 1);
        let slow = generate_trace(&[TenantSpec::new("slow", 100_000)], 64, 1);
        assert!(fast.last().unwrap().arrival < slow.last().unwrap().arrival);
    }

    #[test]
    fn class_costs_order_by_shape() {
        let small = RequestClass::Gemm(GemmShape::square(128));
        let big = RequestClass::Gemm(GemmShape::square(512));
        assert!(small.cost_macs() < big.cost_macs());
        assert_eq!(small.label(), "gemm:128x128x128");
    }
}
