//! The serving loop: admission control and continuous batching over a
//! [`JobTable`].

use std::collections::BTreeMap;

use virgo::{GpuConfig, JobId, JobTable, SimMode};

use crate::policy::{ArbitrationPolicy, BatchingMode};
use crate::report::{RequestOutcome, ServeReport};
use crate::request::Request;

/// Configuration of one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The machine. Install a fault plan with [`GpuConfig::with_faults`] to
    /// replay a trace against degraded hardware.
    pub gpu: GpuConfig,
    /// Time-advance mode of the underlying session (results are
    /// bit-identical across modes; fast-forward is just faster).
    pub mode: SimMode,
    /// How the pending queue is ordered when slots free up.
    pub policy: ArbitrationPolicy,
    /// Serial whole-machine occupancy vs continuous batching.
    pub batching: BatchingMode,
}

impl ServeConfig {
    /// Continuous-batching FIFO serving on `gpu` under fast-forward.
    pub fn new(gpu: GpuConfig) -> Self {
        ServeConfig {
            gpu,
            mode: SimMode::FastForward,
            policy: ArbitrationPolicy::Fifo,
            batching: BatchingMode::Continuous,
        }
    }

    /// Sets the arbitration policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ArbitrationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the batching mode.
    #[must_use]
    pub fn with_batching(mut self, batching: BatchingMode) -> Self {
        self.batching = batching;
        self
    }

    /// Sets the time-advance mode.
    #[must_use]
    pub fn with_mode(mut self, mode: SimMode) -> Self {
        self.mode = mode;
        self
    }
}

/// Drives a request trace through a [`JobTable`] session.
///
/// ```
/// use virgo::GpuConfig;
/// use virgo_serve::{generate_trace, ServeConfig, Server, TenantSpec};
///
/// let tenants = [TenantSpec::new("t0", 200_000), TenantSpec::new("t1", 200_000)];
/// let trace = generate_trace(&tenants, 2, 1);
/// let server = Server::new(ServeConfig::new(GpuConfig::virgo().with_clusters(2)));
/// let report = server.run(&trace);
/// assert_eq!(report.completed(), 4);
/// assert!(report.p99_latency_cycles > 0);
/// ```
#[derive(Debug)]
pub struct Server {
    config: ServeConfig,
}

impl Server {
    /// Creates a server over `config`.
    pub fn new(config: ServeConfig) -> Self {
        Server { config }
    }

    /// The run configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Serves `trace` to completion and returns the aggregate report.
    ///
    /// The loop alternates admission and time-advance: arrivals due at the
    /// current cycle join the pending queue, the policy admits every
    /// request that fits the free cluster slots (exactly one, on the whole
    /// machine, under [`BatchingMode::Serial`]), and the session then
    /// advances to the next completion or the next arrival — whichever
    /// comes first — so admission decisions are re-taken at every event.
    pub fn run(&self, trace: &[Request]) -> ServeReport {
        let total_clusters = self.config.gpu.clusters.max(1);
        let mut table = JobTable::new(self.config.gpu.clone(), self.config.mode);
        let mut pending: Vec<usize> = Vec::new();
        let mut resident: Vec<(JobId, usize)> = Vec::new();
        let mut admitted_per_tenant: BTreeMap<String, u64> = BTreeMap::new();
        let mut outcomes: Vec<RequestOutcome> = Vec::new();
        let mut next_arrival = 0usize;

        loop {
            while next_arrival < trace.len() && trace[next_arrival].arrival <= table.now() {
                pending.push(next_arrival);
                next_arrival += 1;
            }
            self.admit_pending(
                &mut table,
                trace,
                &mut pending,
                &mut resident,
                &mut admitted_per_tenant,
                total_clusters,
            );
            if table.is_idle() && pending.is_empty() && next_arrival >= trace.len() {
                break;
            }
            let target = trace.get(next_arrival).map_or(u64::MAX, |req| req.arrival);
            for done in table.advance_until(target) {
                let pos = resident
                    .iter()
                    .position(|&(id, _)| id == done.id)
                    .expect("completion for a job the server admitted");
                let (_, idx) = resident.swap_remove(pos);
                let req = &trace[idx];
                let timed_out = done.result.is_err();
                outcomes.push(RequestOutcome {
                    id: req.id,
                    tenant: req.tenant.clone(),
                    label: req.class.label(),
                    arrival: req.arrival,
                    admitted: done.admitted,
                    retired: done.retired,
                    clusters: done.clusters.len(),
                    timed_out,
                    report: done.result.ok(),
                });
            }
        }

        ServeReport::new(
            self.config.policy,
            self.config.batching,
            total_clusters,
            outcomes,
            table.now(),
        )
    }

    /// Admits pending requests onto free cluster slots until the policy
    /// finds nothing that fits.
    fn admit_pending(
        &self,
        table: &mut JobTable,
        trace: &[Request],
        pending: &mut Vec<usize>,
        resident: &mut Vec<(JobId, usize)>,
        admitted_per_tenant: &mut BTreeMap<String, u64>,
        total_clusters: u32,
    ) {
        loop {
            if pending.is_empty() {
                return;
            }
            let free = table.free_clusters();
            let fits = |req: &Request| -> bool {
                let want = req.clusters.clamp(1, total_clusters) as usize;
                match self.config.batching {
                    // Serial occupancy: the machine whole or not at all.
                    BatchingMode::Serial => free.len() == total_clusters as usize,
                    BatchingMode::Continuous => want <= free.len(),
                }
            };
            let pick = pending
                .iter()
                .enumerate()
                .filter(|&(_, &idx)| fits(&trace[idx]))
                .min_by_key(|&(_, &idx)| {
                    let req = &trace[idx];
                    let fairness = admitted_per_tenant.get(&req.tenant).copied().unwrap_or(0);
                    match self.config.policy {
                        ArbitrationPolicy::Fifo => (0, req.arrival, req.id),
                        ArbitrationPolicy::ShortestJob => {
                            (req.class.cost_macs(), req.arrival, req.id)
                        }
                        ArbitrationPolicy::TenantFair => (fairness, req.arrival, req.id),
                    }
                })
                .map(|(pos, _)| pos);
            let Some(pos) = pick else { return };
            let idx = pending.remove(pos);
            let req = &trace[idx];
            let free = table.free_clusters();
            let want = match self.config.batching {
                BatchingMode::Serial => total_clusters as usize,
                BatchingMode::Continuous => req.clusters.clamp(1, total_clusters) as usize,
            };
            let ids: Vec<u32> = free[..want].to_vec();
            let kernel = req
                .class
                .build(&self.config.gpu.clone().with_allocation(ids.clone()));
            let name = format!("{}/r{}", req.tenant, req.id);
            let job = table
                .admit(&name, &kernel, &ids, req.budget)
                .expect("admission onto validated free clusters");
            resident.push((job, idx));
            *admitted_per_tenant.entry(req.tenant.clone()).or_insert(0) += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{generate_trace, RequestClass, TenantSpec};
    use virgo_kernels::GemmShape;

    fn small_gpu() -> GpuConfig {
        GpuConfig::virgo().with_clusters(2)
    }

    fn overlapping_tenants() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new("a", 20_000),
            TenantSpec::new("b", 20_000)
                .with_classes(vec![RequestClass::Gemm(GemmShape::square(128))]),
        ]
    }

    #[test]
    fn serves_a_trace_to_completion() {
        let trace = generate_trace(&overlapping_tenants(), 3, 11);
        let report = Server::new(ServeConfig::new(small_gpu())).run(&trace);
        assert_eq!(report.outcomes.len(), trace.len());
        assert_eq!(report.completed(), trace.len());
        assert_eq!(report.timed_out(), 0);
        assert_eq!(report.tenants.len(), 2);
        assert!(report.goodput_rps > 0.0);
        assert!(report.energy_per_request_mj > 0.0);
        for outcome in &report.outcomes {
            assert!(outcome.admitted >= outcome.arrival);
            assert!(outcome.retired > outcome.admitted);
            assert!(outcome.report.is_some());
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let trace = generate_trace(&overlapping_tenants(), 3, 5);
        let server = Server::new(ServeConfig::new(small_gpu()));
        let a = server.run(&trace);
        let b = server.run(&trace);
        assert_eq!(a.makespan_cycles, b.makespan_cycles);
        assert_eq!(a.p99_latency_cycles, b.p99_latency_cycles);
        assert_eq!(a.active_energy_mj.to_bits(), b.active_energy_mj.to_bits());
    }

    #[test]
    fn modes_agree_on_serving_metrics() {
        let trace = generate_trace(&overlapping_tenants(), 3, 9);
        let ff =
            Server::new(ServeConfig::new(small_gpu()).with_mode(SimMode::FastForward)).run(&trace);
        let naive =
            Server::new(ServeConfig::new(small_gpu()).with_mode(SimMode::Naive)).run(&trace);
        assert_eq!(ff.makespan_cycles, naive.makespan_cycles);
        assert_eq!(ff.p50_latency_cycles, naive.p50_latency_cycles);
        assert_eq!(ff.p99_latency_cycles, naive.p99_latency_cycles);
        assert_eq!(
            ff.active_energy_mj.to_bits(),
            naive.active_energy_mj.to_bits()
        );
    }

    #[test]
    fn continuous_batching_beats_serial_fifo_under_overlap() {
        // Two tenants offering one-cluster requests faster than a serial
        // machine can drain them: sharing the two clusters must cut the
        // p99 latency and raise goodput.
        let tenants = [TenantSpec::new("a", 5_000), TenantSpec::new("b", 5_000)];
        let trace = generate_trace(&tenants, 4, 3);
        let serial = Server::new(ServeConfig::new(small_gpu()).with_batching(BatchingMode::Serial))
            .run(&trace);
        let continuous = Server::new(ServeConfig::new(small_gpu())).run(&trace);
        assert_eq!(serial.completed(), trace.len());
        assert_eq!(continuous.completed(), trace.len());
        assert!(
            continuous.p99_latency_cycles < serial.p99_latency_cycles,
            "continuous {} vs serial {}",
            continuous.p99_latency_cycles,
            serial.p99_latency_cycles
        );
        assert!(continuous.goodput_rps > serial.goodput_rps);
    }

    #[test]
    fn tenant_fair_interleaves_a_flooded_queue() {
        // Tenant "flood" dumps many requests at cycle 1; tenant "drip"
        // arrives just after. Under FIFO the drip request waits behind the
        // whole flood; under tenant-fair it is admitted at the first free
        // slot.
        let mut trace = Vec::new();
        for i in 0..6u64 {
            trace.push(Request {
                id: i,
                tenant: "flood".to_string(),
                class: RequestClass::Gemm(GemmShape::square(128)),
                arrival: 1,
                clusters: 1,
                budget: 50_000_000,
            });
        }
        trace.push(Request {
            id: 6,
            tenant: "drip".to_string(),
            class: RequestClass::Gemm(GemmShape::square(128)),
            arrival: 2,
            clusters: 1,
            budget: 50_000_000,
        });
        let fifo = Server::new(ServeConfig::new(small_gpu())).run(&trace);
        let fair =
            Server::new(ServeConfig::new(small_gpu()).with_policy(ArbitrationPolicy::TenantFair))
                .run(&trace);
        let drip_latency = |r: &ServeReport| {
            r.outcomes
                .iter()
                .find(|o| o.tenant == "drip")
                .unwrap()
                .latency()
        };
        assert!(
            drip_latency(&fair) < drip_latency(&fifo),
            "fair {} vs fifo {}",
            drip_latency(&fair),
            drip_latency(&fifo)
        );
    }

    #[test]
    fn shortest_job_prefers_the_cheap_request() {
        // Both arrive while the machine is busy; when a slot frees, SJF
        // admits the small GEMM before the earlier-arrived big one.
        let trace = vec![
            Request {
                id: 0,
                tenant: "warm".to_string(),
                class: RequestClass::Gemm(GemmShape::square(128)),
                arrival: 1,
                clusters: 2,
                budget: 50_000_000,
            },
            Request {
                id: 1,
                tenant: "big".to_string(),
                class: RequestClass::Gemm(GemmShape::square(256)),
                arrival: 2,
                clusters: 1,
                budget: 50_000_000,
            },
            Request {
                id: 2,
                tenant: "small".to_string(),
                class: RequestClass::Gemm(GemmShape::square(128)),
                arrival: 3,
                clusters: 1,
                budget: 50_000_000,
            },
        ];
        let report =
            Server::new(ServeConfig::new(small_gpu()).with_policy(ArbitrationPolicy::ShortestJob))
                .run(&trace);
        let admitted = |tenant: &str| {
            report
                .outcomes
                .iter()
                .find(|o| o.tenant == tenant)
                .unwrap()
                .admitted
        };
        assert!(admitted("small") <= admitted("big"));
    }

    #[test]
    fn budget_expiry_is_reported_as_timed_out() {
        let trace = vec![Request {
            id: 0,
            tenant: "t".to_string(),
            class: RequestClass::Gemm(GemmShape::square(128)),
            arrival: 1,
            clusters: 2,
            budget: 100, // far below the kernel's runtime
        }];
        let report = Server::new(ServeConfig::new(small_gpu())).run(&trace);
        assert_eq!(report.timed_out(), 1);
        assert_eq!(report.completed(), 0);
        assert_eq!(report.outcomes[0].service(), 100);
        assert_eq!(report.energy_per_request_mj, 0.0);
    }
}
