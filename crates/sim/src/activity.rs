//! The [`NextActivity`] trait behind the simulator's cycle-skipping
//! fast-forward engine.
//!
//! The simulator is cycle stepped: the driver calls `tick` on every timed
//! component once per cycle. Most of those ticks do nothing — warps are
//! blocked on fixed-latency DRAM, DMA or matrix-unit operations, and the only
//! per-cycle effect is stall/idle accounting. [`NextActivity`] lets each
//! component report the earliest *future* cycle at which its externally
//! visible state can change, so the driver can jump over the quiescent region
//! in one step (bulk-incrementing the per-cycle counters) instead of ticking
//! through it.
//!
//! # Soundness contract
//!
//! For the fast-forward to stay **bit-identical** to the naive one-cycle loop,
//! an implementation must obey two rules:
//!
//! 1. **No early activity.** If `next_activity(now)` returns `Some(t)`, then
//!    ticking the component at any cycle `c` with `now <= c < t` must have no
//!    effect beyond time-uniform per-cycle accounting (counters that increment
//!    by exactly one every cycle regardless of the cycle number, e.g. a DMA
//!    engine's `busy_cycles`). Those counters are replayed in bulk by the
//!    component's `fast_forward` hook.
//! 2. **Conservatism is fine; optimism is not.** Returning `Some(now)` (or any
//!    cycle earlier than the true next event) merely costs performance — the
//!    driver falls back to ticking. Returning a cycle *later* than the true
//!    next event would skip real work and is a correctness bug.
//!
//! `None` means the component will never act again on its own: it is drained
//! and can only be re-activated by someone else submitting work to it.
//!
//! Purely reactive components (SRAMs, caches, DRAM channels) have no
//! self-driven activity at all — their state only changes when an active
//! component issues a request — so they implement this trait by returning
//! `None` unconditionally.

use crate::cycle::Cycle;

/// A timed component that can report the next cycle at which it has work to
/// do. See the [module documentation](self) for the soundness contract.
pub trait NextActivity {
    /// The earliest cycle `>= now` at which ticking this component can change
    /// its externally visible state, or `None` if the component is drained
    /// and will never act again without new work being submitted.
    fn next_activity(&self, now: Cycle) -> Option<Cycle>;
}

/// Combines two optional event times, keeping the earlier one.
///
/// The identity element is `None` ("no self-driven activity"), so aggregates
/// can fold component results with this function.
///
/// # Example
///
/// ```
/// use virgo_sim::{earliest, Cycle};
///
/// let a = Some(Cycle::new(10));
/// let b = Some(Cycle::new(7));
/// assert_eq!(earliest(a, b), Some(Cycle::new(7)));
/// assert_eq!(earliest(a, None), a);
/// assert_eq!(earliest(None, None), None);
/// ```
#[must_use]
pub fn earliest(a: Option<Cycle>, b: Option<Cycle>) -> Option<Cycle> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedEvent(Option<Cycle>);

    impl NextActivity for FixedEvent {
        fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
            self.0
        }
    }

    #[test]
    fn earliest_prefers_the_smaller_event() {
        assert_eq!(
            earliest(Some(Cycle::new(5)), Some(Cycle::new(3))),
            Some(Cycle::new(3))
        );
        assert_eq!(earliest(None, Some(Cycle::new(3))), Some(Cycle::new(3)));
        assert_eq!(earliest(Some(Cycle::new(5)), None), Some(Cycle::new(5)));
        assert_eq!(earliest(None, None), None);
    }

    #[test]
    fn earliest_folds_over_components() {
        let components = [
            FixedEvent(None),
            FixedEvent(Some(Cycle::new(40))),
            FixedEvent(Some(Cycle::new(12))),
        ];
        let next = components
            .iter()
            .fold(None, |acc, c| earliest(acc, c.next_activity(Cycle::ZERO)));
        assert_eq!(next, Some(Cycle::new(12)));
    }
}
