//! The [`NextActivity`] trait behind the simulator's cycle-skipping
//! fast-forward engine.
//!
//! The simulator is cycle stepped: the driver calls `tick` on every timed
//! component once per cycle. Most of those ticks do nothing — warps are
//! blocked on fixed-latency DRAM, DMA or matrix-unit operations, and the only
//! per-cycle effect is stall/idle accounting. [`NextActivity`] lets each
//! component report the earliest *future* cycle at which its externally
//! visible state can change, so the driver can jump over the quiescent region
//! in one step (bulk-incrementing the per-cycle counters) instead of ticking
//! through it.
//!
//! # Soundness contract
//!
//! For the fast-forward to stay **bit-identical** to the naive one-cycle loop,
//! an implementation must obey two rules:
//!
//! 1. **No early activity.** If `next_activity(now)` returns `Some(t)`, then
//!    ticking the component at any cycle `c` with `now <= c < t` must have no
//!    effect beyond time-uniform per-cycle accounting (counters that increment
//!    by exactly one every cycle regardless of the cycle number, e.g. a DMA
//!    engine's `busy_cycles`). Those counters are replayed in bulk by the
//!    component's `fast_forward` hook.
//! 2. **Conservatism is fine; optimism is not.** Returning `Some(now)` (or any
//!    cycle earlier than the true next event) merely costs performance — the
//!    driver falls back to ticking. Returning a cycle *later* than the true
//!    next event would skip real work and is a correctness bug.
//!
//! # The three return shapes
//!
//! Under the event-queue scheduler (`virgo_sim::sched`) the three possible
//! answers mean precisely:
//!
//! * **`Some(now)`** — "tick me again right away": the component has work on
//!   the very next dispatch. Always sound, never skips anything, but a
//!   component that answers `Some(now)` on every busy cycle pins the horizon
//!   and degrades the event-driven loop back to naive stepping (the failure
//!   mode the batched Gemmini streaming removed). Use it only when the next
//!   event genuinely is immediate — e.g. an idle unit with a queued command
//!   to latch.
//! * **`Some(t)` with `t > now`** — "park me until `t`": the scheduler will
//!   not touch the component before `t`, and the skipped window is
//!   bulk-replayed through `fast_forward`. This is the shape that makes
//!   dense kernels cheap: one event per milestone (a block boundary, a
//!   transfer completion) instead of one per cycle.
//! * **`None`** — "never on my own again": the component is drained and only
//!   external submission can revive it. The driver drops it from the queue
//!   entirely; whoever submits new work is responsible for re-scheduling it
//!   (in this codebase the cluster wakes its devices when a core's MMIO
//!   write lands — the submitter's tick outcome carries the wake, not the
//!   drained component).
//!
//! Purely reactive components (shared-memory banks, caches, the L2/DRAM
//! back-end, accumulator SRAMs) have no self-driven activity at all — their
//! state only changes when an active component issues a request — so they
//! implement this trait by returning `None` unconditionally and ignore `now`.
//! Audit note for such impls: holding *deferred* work does not by itself
//! require a horizon. The shared memory's pending stream-read queue is
//! future-dated work, but every pending read was scheduled by a matrix unit
//! whose own horizon is at or before that block's end, so the producer — not
//! the passive scratchpad — keeps the draining tick scheduled.
//!
//! ```
//! use virgo_sim::{Cycle, NextActivity};
//!
//! /// A toy engine: busy until a fixed cycle, then drained.
//! struct Engine { busy_until: Option<Cycle> }
//!
//! impl NextActivity for Engine {
//!     fn next_activity(&self, now: Cycle) -> Option<Cycle> {
//!         // Clamp to `now`: a milestone in the past means "act immediately",
//!         // never a time-travel request.
//!         self.busy_until.map(|t| t.max(now))
//!     }
//! }
//!
//! let running = Engine { busy_until: Some(Cycle::new(100)) };
//! // Park until the milestone...
//! assert_eq!(running.next_activity(Cycle::new(40)), Some(Cycle::new(100)));
//! // ...a stale milestone degrades to `Some(now)`, not to the past...
//! assert_eq!(running.next_activity(Cycle::new(120)), Some(Cycle::new(120)));
//! // ...and a drained engine leaves the event queue.
//! let drained = Engine { busy_until: None };
//! assert_eq!(drained.next_activity(Cycle::new(40)), None);
//! ```
//!
//! A purely reactive component ignores `now` entirely:
//!
//! ```
//! use virgo_sim::{Cycle, NextActivity};
//!
//! struct Sram;
//! impl NextActivity for Sram {
//!     fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
//!         None // request-driven only: requesters schedule the events
//!     }
//! }
//! assert_eq!(Sram.next_activity(Cycle::ZERO), None);
//! ```

use crate::cycle::Cycle;

/// A timed component that can report the next cycle at which it has work to
/// do. See the [module documentation](self) for the soundness contract.
pub trait NextActivity {
    /// The earliest cycle `>= now` at which ticking this component can change
    /// its externally visible state, or `None` if the component is drained
    /// and will never act again without new work being submitted.
    fn next_activity(&self, now: Cycle) -> Option<Cycle>;
}

/// Combines two optional event times, keeping the earlier one.
///
/// The identity element is `None` ("no self-driven activity"), so aggregates
/// can fold component results with this function.
///
/// # Example
///
/// ```
/// use virgo_sim::{earliest, Cycle};
///
/// let a = Some(Cycle::new(10));
/// let b = Some(Cycle::new(7));
/// assert_eq!(earliest(a, b), Some(Cycle::new(7)));
/// assert_eq!(earliest(a, None), a);
/// assert_eq!(earliest(None, None), None);
/// ```
#[must_use]
pub fn earliest(a: Option<Cycle>, b: Option<Cycle>) -> Option<Cycle> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedEvent(Option<Cycle>);

    impl NextActivity for FixedEvent {
        fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
            self.0
        }
    }

    #[test]
    fn earliest_prefers_the_smaller_event() {
        assert_eq!(
            earliest(Some(Cycle::new(5)), Some(Cycle::new(3))),
            Some(Cycle::new(3))
        );
        assert_eq!(earliest(None, Some(Cycle::new(3))), Some(Cycle::new(3)));
        assert_eq!(earliest(Some(Cycle::new(5)), None), Some(Cycle::new(5)));
        assert_eq!(earliest(None, None), None);
    }

    #[test]
    fn earliest_folds_over_components() {
        let components = [
            FixedEvent(None),
            FixedEvent(Some(Cycle::new(40))),
            FixedEvent(Some(Cycle::new(12))),
        ];
        let next = components
            .iter()
            .fold(None, |acc, c| earliest(acc, c.next_activity(Cycle::ZERO)));
        assert_eq!(next, Some(Cycle::new(12)));
    }
}
