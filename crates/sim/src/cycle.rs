//! Simulated-time types: [`Cycle`] counts and clock [`Frequency`].

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A count of clock cycles in the simulated machine.
///
/// `Cycle` is a thin newtype over `u64` used everywhere a *duration or point
/// in simulated time* is meant, so that cycle counts cannot be silently mixed
/// with unrelated integers (element counts, byte counts, ...).
///
/// # Example
///
/// ```
/// use virgo_sim::Cycle;
///
/// let start = Cycle::new(100);
/// let end = start + Cycle::new(32);
/// assert_eq!(end.get(), 132);
/// assert_eq!((end - start).get(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The zero cycle, i.e. the beginning of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle count from a raw `u64`.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns `self` advanced by `n` cycles.
    #[inline]
    pub const fn plus(self, n: u64) -> Self {
        Cycle(self.0 + n)
    }

    /// Saturating subtraction: returns `self - other`, or zero if `other`
    /// is later than `self`.
    #[inline]
    pub const fn saturating_sub(self, other: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(other.0))
    }

    /// Returns the larger of two cycle counts.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the cycle count as an `f64`, for ratio computations.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl Add for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self` (cycle underflow).
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl SubAssign for Cycle {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycle) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        Cycle(iter.map(|c| c.0).sum())
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

impl From<Cycle> for u64 {
    fn from(c: Cycle) -> Self {
        c.0
    }
}

/// A clock frequency, used to convert cycle counts into wall-clock time and
/// energy into power.
///
/// The synthesized Virgo SoC in the paper runs at 400 MHz in a 16 nm process;
/// [`Frequency::VIRGO_SOC`] captures that default.
///
/// # Example
///
/// ```
/// use virgo_sim::{Cycle, Frequency};
///
/// let f = Frequency::VIRGO_SOC;
/// assert_eq!(f.as_hz(), 400_000_000);
/// // One thousand cycles at 400 MHz is 2.5 microseconds.
/// assert!((f.cycles_to_seconds(Cycle::new(1000)) - 2.5e-6).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frequency {
    hz: u64,
}

impl Frequency {
    /// The 400 MHz clock used for the synthesized Virgo SoC in the paper.
    pub const VIRGO_SOC: Frequency = Frequency { hz: 400_000_000 };

    /// Creates a frequency from a value in hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    pub fn from_hz(hz: u64) -> Self {
        assert!(hz > 0, "clock frequency must be non-zero");
        Frequency { hz }
    }

    /// Creates a frequency from a value in megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero.
    pub fn from_mhz(mhz: u64) -> Self {
        Self::from_hz(mhz * 1_000_000)
    }

    /// Returns the frequency in hertz.
    #[inline]
    pub fn as_hz(self) -> u64 {
        self.hz
    }

    /// Returns the frequency in megahertz as a floating-point value.
    #[inline]
    pub fn as_mhz(self) -> f64 {
        self.hz as f64 / 1e6
    }

    /// Returns the duration of one clock period in seconds.
    #[inline]
    pub fn period_seconds(self) -> f64 {
        1.0 / self.hz as f64
    }

    /// Converts a cycle count into seconds of simulated time.
    #[inline]
    pub fn cycles_to_seconds(self, cycles: Cycle) -> f64 {
        cycles.as_f64() * self.period_seconds()
    }
}

impl Default for Frequency {
    fn default() -> Self {
        Frequency::VIRGO_SOC
    }
}

impl crate::StableHash for Cycle {
    fn stable_hash(&self, h: &mut crate::StableHasher) {
        h.write_u64(self.get());
    }
}

impl crate::StableHash for Frequency {
    fn stable_hash(&self, h: &mut crate::StableHasher) {
        h.write_u64(self.hz);
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} MHz", self.as_mhz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic_roundtrips() {
        let a = Cycle::new(10);
        let b = Cycle::new(3);
        assert_eq!((a + b).get(), 13);
        assert_eq!((a - b).get(), 7);
        let mut c = a;
        c += b;
        assert_eq!(c.get(), 13);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn cycle_saturating_sub_clamps_to_zero() {
        let a = Cycle::new(3);
        let b = Cycle::new(10);
        assert_eq!(a.saturating_sub(b), Cycle::ZERO);
        assert_eq!(b.saturating_sub(a), Cycle::new(7));
    }

    #[test]
    fn cycle_sum_and_max() {
        let total: Cycle = [1u64, 2, 3].iter().map(|&x| Cycle::new(x)).sum();
        assert_eq!(total, Cycle::new(6));
        assert_eq!(Cycle::new(4).max(Cycle::new(9)), Cycle::new(9));
    }

    #[test]
    fn cycle_conversions() {
        let c: Cycle = 42u64.into();
        let raw: u64 = c.into();
        assert_eq!(raw, 42);
        assert_eq!(format!("{c}"), "42 cycles");
    }

    #[test]
    fn frequency_constructors_agree() {
        assert_eq!(Frequency::from_mhz(400), Frequency::VIRGO_SOC);
        assert_eq!(Frequency::from_hz(1_000_000).as_mhz(), 1.0);
        assert_eq!(format!("{}", Frequency::VIRGO_SOC), "400 MHz");
    }

    #[test]
    fn frequency_time_conversion() {
        let f = Frequency::from_mhz(100);
        assert!((f.period_seconds() - 1e-8).abs() < 1e-20);
        assert!((f.cycles_to_seconds(Cycle::new(100)) - 1e-6).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frequency_rejected() {
        let _ = Frequency::from_hz(0);
    }

    #[test]
    fn default_frequency_is_soc_clock() {
        assert_eq!(Frequency::default(), Frequency::VIRGO_SOC);
    }
}
