//! Deterministic, cycle-windowed fault-injection plans.
//!
//! A [`FaultPlan`] is a *schedule* of fault events, each active over a
//! half-open cycle window `[from, until)`: DSM links dying or slowing down,
//! DRAM channels dropping out or being throttled, scratchpad ECC bit flips,
//! and clusters held in reset past cycle zero. The plan is carried on the
//! machine configuration (off by default) and digested into the simulation
//! key, so cached reports of faulted and healthy machines can never alias.
//!
//! Two properties are load-bearing and pinned by tests:
//!
//! * **Determinism** — every stochastic choice (ECC event spacing) is drawn
//!   from a [`SplitMix64`] stream seeded from the plan, and every fault
//!   decision is made at the cycle a component *services a request*, never
//!   from wall clock or iteration order. The same plan therefore produces the
//!   same `FaultStats` and the same report, bit for bit, in both driver
//!   modes (naive and fast-forward).
//! * **Zero-cost when unused** — an empty plan installs no state in any
//!   component and perturbs no counter: a machine with `FaultPlan::default()`
//!   is bit-identical to one built before this module existed.

use crate::rng::SplitMix64;
use crate::stablehash::{StableHash, StableHasher};

/// Sentinel `until` value for a fault that never recovers.
pub const PERMANENT: u64 = u64::MAX;

/// Fault windows are clamped to this horizon before any cycle arithmetic so
/// that `PERMANENT` windows never overflow [`crate::Cycle`] additions. A
/// quarter of the `u64` range is still ~10^12 years of simulated time at any
/// realistic clock.
pub const FAR_FUTURE: u64 = u64::MAX / 4;

/// What breaks (and how) during a fault window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A DSM link is dead. On the ring topology `link` names the segment
    /// between clusters `link` and `link + 1 (mod N)` and traffic reroutes
    /// the other way around the ring; on the crossbar it names cluster
    /// `link`'s ingress port and transfers stall until the window closes.
    DsmLinkDown {
        /// Ring segment (or crossbar ingress port) index.
        link: u32,
    },
    /// A DSM link runs degraded: transfers crossing it occupy the link for
    /// `bandwidth_divisor`× as long.
    DsmLinkSlow {
        /// Ring segment (or crossbar ingress port) index.
        link: u32,
        /// Bandwidth reduction factor (≥ 1; 1 is a no-op).
        bandwidth_divisor: u32,
    },
    /// A DRAM channel is out: traffic striped onto it is deterministically
    /// re-striped across the surviving channels.
    DramChannelDown {
        /// Channel index.
        channel: u32,
    },
    /// A DRAM channel answers slowly: its access latency is multiplied.
    DramChannelThrottle {
        /// Channel index.
        channel: u32,
        /// Latency multiplication factor (≥ 1; 1 is a no-op).
        latency_multiplier: u32,
    },
    /// Correctable single-bit ECC upsets in a cluster's scratchpad: each
    /// in-window access may take a flip, detected *and* corrected in place
    /// for a small scrub penalty.
    EccSingleBit {
        /// Cluster whose scratchpad is affected.
        cluster: u32,
        /// Mean number of in-window accesses between upsets (≥ 1).
        mean_access_gap: u64,
    },
    /// Uncorrectable double-bit ECC upsets: detected but not correctable,
    /// modelled as a detect-and-refetch penalty on the access.
    EccDoubleBit {
        /// Cluster whose scratchpad is affected.
        cluster: u32,
        /// Mean number of in-window accesses between upsets (≥ 1).
        mean_access_gap: u64,
    },
    /// The cluster is held in reset while the window is active and begins
    /// fetching only once it closes (a late-start / delayed power-up fault).
    LateClusterStart {
        /// Cluster held back.
        cluster: u32,
    },
}

impl FaultKind {
    /// The cluster this fault is scoped to, when it is cluster-scoped
    /// (machine-level faults — DSM links, DRAM channels — return `None`).
    pub fn cluster(&self) -> Option<u32> {
        match *self {
            FaultKind::EccSingleBit { cluster, .. }
            | FaultKind::EccDoubleBit { cluster, .. }
            | FaultKind::LateClusterStart { cluster } => Some(cluster),
            _ => None,
        }
    }
}

impl StableHash for FaultKind {
    fn stable_hash(&self, h: &mut StableHasher) {
        match *self {
            FaultKind::DsmLinkDown { link } => {
                h.write_u64(0);
                h.write_u64(u64::from(link));
            }
            FaultKind::DsmLinkSlow {
                link,
                bandwidth_divisor,
            } => {
                h.write_u64(1);
                h.write_u64(u64::from(link));
                h.write_u64(u64::from(bandwidth_divisor));
            }
            FaultKind::DramChannelDown { channel } => {
                h.write_u64(2);
                h.write_u64(u64::from(channel));
            }
            FaultKind::DramChannelThrottle {
                channel,
                latency_multiplier,
            } => {
                h.write_u64(3);
                h.write_u64(u64::from(channel));
                h.write_u64(u64::from(latency_multiplier));
            }
            FaultKind::EccSingleBit {
                cluster,
                mean_access_gap,
            } => {
                h.write_u64(4);
                h.write_u64(u64::from(cluster));
                h.write_u64(mean_access_gap);
            }
            FaultKind::EccDoubleBit {
                cluster,
                mean_access_gap,
            } => {
                h.write_u64(5);
                h.write_u64(u64::from(cluster));
                h.write_u64(mean_access_gap);
            }
            FaultKind::LateClusterStart { cluster } => {
                h.write_u64(6);
                h.write_u64(u64::from(cluster));
            }
        }
    }
}

/// One scheduled fault: a [`FaultKind`] active over `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// What breaks.
    pub kind: FaultKind,
    /// First cycle the fault is active.
    pub from: u64,
    /// First cycle the fault is *no longer* active ([`PERMANENT`] = never).
    pub until: u64,
}

impl FaultEvent {
    /// True while the fault window covers `cycle`.
    pub fn active_at(&self, cycle: u64) -> bool {
        self.from <= cycle && cycle < self.until
    }

    /// The window end clamped to [`FAR_FUTURE`], safe for cycle arithmetic.
    pub fn until_clamped(&self) -> u64 {
        self.until.min(FAR_FUTURE)
    }
}

impl StableHash for FaultEvent {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.kind.stable_hash(h);
        h.write_u64(self.from);
        h.write_u64(self.until);
    }
}

/// A schedule of fault events plus the seed for every stochastic draw.
///
/// # Example
///
/// ```
/// use virgo_sim::fault::{FaultKind, FaultPlan, PERMANENT};
///
/// let plan = FaultPlan::seeded(7)
///     .with_event(FaultKind::DsmLinkDown { link: 2 }, 10_000, PERMANENT)
///     .with_event(
///         FaultKind::EccSingleBit { cluster: 0, mean_access_gap: 512 },
///         0,
///         50_000,
///     );
/// assert!(!plan.is_empty());
/// assert_eq!(plan.windows_activated_by(20_000), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the SplitMix64 streams behind ECC event spacing.
    pub seed: u64,
    /// The scheduled events, in declaration order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan drawing from `seed` (events are added with
    /// [`FaultPlan::with_event`]).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Adds one fault active over `[from, until)` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or a rate/divisor parameter is zero.
    pub fn with_event(mut self, kind: FaultKind, from: u64, until: u64) -> Self {
        assert!(from < until, "fault window [{from}, {until}) is empty");
        match kind {
            FaultKind::DsmLinkSlow {
                bandwidth_divisor, ..
            } => assert!(bandwidth_divisor >= 1, "bandwidth divisor must be >= 1"),
            FaultKind::DramChannelThrottle {
                latency_multiplier, ..
            } => assert!(latency_multiplier >= 1, "latency multiplier must be >= 1"),
            FaultKind::EccSingleBit {
                mean_access_gap, ..
            }
            | FaultKind::EccDoubleBit {
                mean_access_gap, ..
            } => assert!(mean_access_gap >= 1, "ECC mean access gap must be >= 1"),
            _ => {}
        }
        self.events.push(FaultEvent { kind, from, until });
        self
    }

    /// True when no faults are scheduled (the zero-cost default).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled windows whose `from` lies at or before `end`
    /// (i.e. that activated during a run of `end` cycles).
    pub fn windows_activated_by(&self, end: u64) -> u64 {
        self.events.iter().filter(|e| e.from <= end).count() as u64
    }

    /// Like [`FaultPlan::windows_activated_by`], restricted to the events
    /// scoped to `cluster`.
    pub fn cluster_windows_activated_by(&self, cluster: u32, end: u64) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind.cluster() == Some(cluster) && e.from <= end)
            .count() as u64
    }

    /// Number of cycles in `[0, end]` covered by at least one fault window
    /// (the machine's degraded-mode residency), as the length of the union
    /// of all windows intersected with the run.
    pub fn degraded_cycles(&self, end: u64) -> u64 {
        union_length(self.events.iter(), end)
    }

    /// Like [`FaultPlan::degraded_cycles`], restricted to the events scoped
    /// to `cluster`.
    pub fn cluster_degraded_cycles(&self, cluster: u32, end: u64) -> u64 {
        union_length(
            self.events
                .iter()
                .filter(|e| e.kind.cluster() == Some(cluster)),
            end,
        )
    }

    /// Number of fault windows active at `cycle` (folded into the watchdog's
    /// timeout diagnosis).
    pub fn active_at(&self, cycle: u64) -> u64 {
        self.events.iter().filter(|e| e.active_at(cycle)).count() as u64
    }

    /// First cycle at which `cluster` may run: the latest window end among
    /// its [`FaultKind::LateClusterStart`] events (zero when none apply),
    /// clamped to [`FAR_FUTURE`].
    pub fn cluster_start(&self, cluster: u32) -> u64 {
        self.events
            .iter()
            .filter(
                |e| matches!(e.kind, FaultKind::LateClusterStart { cluster: c } if c == cluster),
            )
            .map(|e| e.until_clamped())
            .max()
            .unwrap_or(0)
    }

    /// Builds the scratchpad ECC injector for `cluster`, or `None` when the
    /// plan schedules no ECC events there (the zero-cost path).
    pub fn ecc_injector(&self, cluster: u32) -> Option<EccInjector> {
        let windows: Vec<EccWindow> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::EccSingleBit {
                    cluster: c,
                    mean_access_gap,
                } if c == cluster => Some((e, mean_access_gap, false)),
                FaultKind::EccDoubleBit {
                    cluster: c,
                    mean_access_gap,
                } if c == cluster => Some((e, mean_access_gap, true)),
                _ => None,
            })
            .enumerate()
            .map(|(i, (e, mean_gap, double))| {
                // Each window owns an independent SplitMix64 stream so that
                // adding a window never perturbs another window's draws.
                let mut rng = SplitMix64::new(
                    self.seed ^ (u64::from(cluster) << 32) ^ (i as u64).wrapping_mul(0x9E37),
                );
                let countdown = next_gap(&mut rng, mean_gap);
                EccWindow {
                    from: e.from,
                    until: e.until,
                    mean_gap,
                    double,
                    rng,
                    countdown,
                }
            })
            .collect();
        if windows.is_empty() {
            None
        } else {
            Some(EccInjector {
                windows,
                stats: EccStats::default(),
            })
        }
    }
}

impl StableHash for FaultPlan {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.seed);
        h.write_u64(self.events.len() as u64);
        for event in &self.events {
            event.stable_hash(h);
        }
    }
}

/// Length of `[0, end]` covered by the union of the events' windows.
fn union_length<'a>(events: impl Iterator<Item = &'a FaultEvent>, end: u64) -> u64 {
    let mut spans: Vec<(u64, u64)> = events
        .filter(|e| e.from <= end)
        .map(|e| (e.from, e.until.min(end.saturating_add(1))))
        .filter(|(from, until)| from < until)
        .collect();
    spans.sort_unstable();
    let mut covered = 0u64;
    let mut cursor = 0u64;
    for (from, until) in spans {
        let from = from.max(cursor);
        if until > from {
            covered += until - from;
            cursor = until;
        }
    }
    covered
}

/// Extra cycles an access pays when a single-bit upset is corrected in
/// place (an ECC scrub on the read path).
pub const ECC_CORRECT_PENALTY: u64 = 2;

/// Extra cycles an access pays when a double-bit upset is detected: the
/// word cannot be corrected and is refetched from its clean source.
pub const ECC_DETECT_PENALTY: u64 = 24;

/// Scratchpad ECC event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EccStats {
    /// Bit upsets injected into accesses.
    pub injected: u64,
    /// Upsets detected by the SECDED code (all of them, in this model).
    pub detected: u64,
    /// The detected subset that was correctable (single-bit).
    pub corrected: u64,
}

#[derive(Debug, Clone)]
struct EccWindow {
    from: u64,
    until: u64,
    mean_gap: u64,
    double: bool,
    rng: SplitMix64,
    countdown: u64,
}

/// The per-scratchpad ECC state machine: counts accesses inside each
/// scheduled window and injects an upset whenever a window's SplitMix64-drawn
/// countdown reaches zero.
///
/// Spacing is counted in *serviced accesses*, not cycles, so the injection
/// points — and therefore every downstream counter — are identical across
/// driver modes.
#[derive(Debug, Clone)]
pub struct EccInjector {
    windows: Vec<EccWindow>,
    stats: EccStats,
}

impl EccInjector {
    /// Observes one scratchpad access at `cycle` and returns the extra
    /// latency the access pays for ECC events (zero almost always).
    pub fn observe(&mut self, cycle: u64) -> u64 {
        let mut penalty = 0u64;
        for window in &mut self.windows {
            if cycle < window.from || cycle >= window.until {
                continue;
            }
            window.countdown -= 1;
            if window.countdown == 0 {
                window.countdown = next_gap(&mut window.rng, window.mean_gap);
                self.stats.injected += 1;
                self.stats.detected += 1;
                if window.double {
                    penalty += ECC_DETECT_PENALTY;
                } else {
                    self.stats.corrected += 1;
                    penalty += ECC_CORRECT_PENALTY;
                }
            }
        }
        penalty
    }

    /// The accumulated event counters.
    pub fn stats(&self) -> EccStats {
        self.stats
    }
}

/// Draws the number of accesses until the next upset: uniform in
/// `1..=2·mean - 1`, so the expectation is `mean` and the gap is never zero.
fn next_gap(rng: &mut SplitMix64, mean: u64) -> u64 {
    1 + rng.next_below(2 * mean - 1)
}

/// Machine-level fault and degraded-mode counters, reported in `SimReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults injected: scheduled windows that activated plus ECC upsets.
    pub injected: u64,
    /// ECC upsets detected.
    pub detected: u64,
    /// ECC upsets corrected (the single-bit subset of `detected`).
    pub corrected: u64,
    /// Cycles of the run spent with at least one fault window active.
    pub degraded_cycles: u64,
    /// DSM transfers that took the long way around a dead ring segment.
    pub dsm_rerouted_transfers: u64,
    /// Cycles DSM transfers spent parked waiting for a dead crossbar port
    /// to recover.
    pub dsm_blocked_cycles: u64,
    /// DRAM accesses re-striped off a dead channel onto a survivor.
    pub dram_restriped_accesses: u64,
    /// Summed first-use recovery latency: cycles from each window's end to
    /// the first request serviced by the recovered resource.
    pub recovery_cycles: u64,
}

/// Per-cluster slice of the fault counters (the cluster-scoped events:
/// scratchpad ECC and late starts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterFaultStats {
    /// Cluster-scoped windows that activated plus ECC upsets injected here.
    pub injected: u64,
    /// ECC upsets detected in this cluster's scratchpad.
    pub detected: u64,
    /// ECC upsets corrected in this cluster's scratchpad.
    pub corrected: u64,
    /// Cycles with a cluster-scoped fault window active.
    pub degraded_cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::seeded(42)
            .with_event(FaultKind::DsmLinkDown { link: 1 }, 100, 200)
            .with_event(
                FaultKind::EccSingleBit {
                    cluster: 0,
                    mean_access_gap: 4,
                },
                150,
                400,
            )
            .with_event(FaultKind::LateClusterStart { cluster: 1 }, 0, 50)
    }

    #[test]
    fn default_plan_is_empty_and_cheap() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.windows_activated_by(u64::MAX), 0);
        assert_eq!(plan.degraded_cycles(1_000_000), 0);
        assert_eq!(plan.cluster_start(0), 0);
        assert!(plan.ecc_injector(0).is_none());
    }

    #[test]
    fn window_activation_and_union_accounting() {
        let plan = plan();
        assert_eq!(plan.windows_activated_by(0), 1); // the late start
        assert_eq!(plan.windows_activated_by(100), 2);
        assert_eq!(plan.windows_activated_by(150), 3);
        // [0,50) ∪ [100,200) ∪ [150,400) = 50 + 300 cycles.
        assert_eq!(plan.degraded_cycles(1_000), 350);
        // Truncated at end=175: [0,50) ∪ [100,176) = 126.
        assert_eq!(plan.degraded_cycles(175), 126);
        assert_eq!(plan.cluster_degraded_cycles(0, 1_000), 250);
        assert_eq!(plan.cluster_degraded_cycles(1, 1_000), 50);
        assert_eq!(plan.active_at(120), 1);
        assert_eq!(plan.active_at(160), 2);
        assert_eq!(plan.active_at(500), 0);
    }

    #[test]
    fn overlapping_windows_are_not_double_counted() {
        let plan = FaultPlan::seeded(1)
            .with_event(FaultKind::DsmLinkDown { link: 0 }, 10, 100)
            .with_event(FaultKind::DramChannelDown { channel: 0 }, 50, 120);
        assert_eq!(plan.degraded_cycles(1_000), 110);
    }

    #[test]
    fn cluster_start_takes_the_latest_hold() {
        let plan = FaultPlan::seeded(1)
            .with_event(FaultKind::LateClusterStart { cluster: 2 }, 0, 500)
            .with_event(FaultKind::LateClusterStart { cluster: 2 }, 0, 900);
        assert_eq!(plan.cluster_start(2), 900);
        assert_eq!(plan.cluster_start(0), 0);
        let forever = FaultPlan::seeded(1).with_event(
            FaultKind::LateClusterStart { cluster: 0 },
            0,
            PERMANENT,
        );
        assert_eq!(forever.cluster_start(0), FAR_FUTURE);
    }

    #[test]
    fn ecc_injector_is_deterministic_and_windowed() {
        let plan = plan();
        let mut a = plan.ecc_injector(0).expect("cluster 0 has ECC events");
        let mut b = plan.ecc_injector(0).expect("cluster 0 has ECC events");
        let mut penalties = Vec::new();
        for access in 0..1_000u64 {
            let cycle = access; // one access per cycle
            let pa = a.observe(cycle);
            let pb = b.observe(cycle);
            assert_eq!(pa, pb, "same seed must inject at the same accesses");
            penalties.push(pa);
        }
        assert_eq!(a.stats(), b.stats());
        // All events fall inside the [150, 400) window.
        assert!(penalties[..150].iter().all(|&p| p == 0));
        assert!(penalties[400..].iter().all(|&p| p == 0));
        assert!(
            a.stats().injected > 0,
            "a gap of ~4 must fire in 250 accesses"
        );
        assert_eq!(a.stats().corrected, a.stats().injected);
        assert_eq!(a.stats().detected, a.stats().injected);
    }

    #[test]
    fn double_bit_events_detect_without_correcting() {
        let plan = FaultPlan::seeded(9).with_event(
            FaultKind::EccDoubleBit {
                cluster: 3,
                mean_access_gap: 2,
            },
            0,
            PERMANENT,
        );
        let mut ecc = plan.ecc_injector(3).unwrap();
        let mut total_penalty = 0;
        for access in 0..100u64 {
            total_penalty += ecc.observe(access);
        }
        assert!(ecc.stats().detected > 0);
        assert_eq!(ecc.stats().corrected, 0);
        assert_eq!(
            total_penalty,
            ecc.stats().detected * ECC_DETECT_PENALTY,
            "every double-bit event pays the refetch penalty"
        );
        assert!(plan.ecc_injector(0).is_none(), "other clusters are clean");
    }

    #[test]
    fn stable_hash_distinguishes_plans() {
        let digest = |p: &FaultPlan| {
            let mut h = StableHasher::new();
            p.stable_hash(&mut h);
            h.finish128()
        };
        let base = plan();
        assert_eq!(digest(&base), digest(&plan()));
        let reseeded = FaultPlan { seed: 43, ..plan() };
        assert_ne!(digest(&base), digest(&reseeded));
        let shifted = FaultPlan::seeded(42)
            .with_event(FaultKind::DsmLinkDown { link: 1 }, 101, 200)
            .with_event(
                FaultKind::EccSingleBit {
                    cluster: 0,
                    mean_access_gap: 4,
                },
                150,
                400,
            )
            .with_event(FaultKind::LateClusterStart { cluster: 1 }, 0, 50);
        assert_ne!(digest(&base), digest(&shifted));
        assert_ne!(digest(&FaultPlan::default()), digest(&base));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_window_is_rejected() {
        let _ = FaultPlan::seeded(0).with_event(FaultKind::DsmLinkDown { link: 0 }, 10, 10);
    }

    #[test]
    #[should_panic(expected = "mean access gap")]
    fn zero_ecc_gap_is_rejected() {
        let _ = FaultPlan::seeded(0).with_event(
            FaultKind::EccSingleBit {
                cluster: 0,
                mean_access_gap: 0,
            },
            0,
            10,
        );
    }
}
