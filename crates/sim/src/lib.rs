//! Cycle-stepped simulation substrate for the Virgo GPU model.
//!
//! This crate contains the small, dependency-free building blocks shared by
//! every other crate in the workspace:
//!
//! * [`Cycle`] and [`Frequency`] — strongly-typed simulated time,
//! * [`stats`] — counters and derived statistics used for utilization and
//!   energy accounting,
//! * [`pipe`] — latency pipes and bounded queues used to model pipelined
//!   hardware structures (caches, DRAM, execution units),
//! * [`rng`] — a tiny deterministic pseudo-random generator used where the
//!   model needs arbitrary-but-reproducible choices,
//! * [`fault`] — deterministic, cycle-windowed fault-injection plans
//!   ([`FaultPlan`]) and the degraded-mode counters they produce.
//!
//! * [`activity`] — the [`NextActivity`] trait behind the cycle-skipping
//!   fast-forward engine,
//! * [`sched`] — the deterministic [`sched::EventQueue`] driving the
//!   event-driven fast-forward loop.
//!
//! The whole simulator is *cycle stepped*: every hardware component exposes a
//! `tick`-style method that advances it by one clock cycle. There is no
//! wall-clock dependence, so simulations are exactly reproducible. On top of
//! the tick interface, components report the earliest future cycle at which
//! they can act via [`NextActivity`], which lets the fast-forward driver park
//! components on a deterministic event queue ([`sched`]) and skip quiescent
//! regions wholesale without changing any observable statistic (see the
//! [`activity`] module for the soundness contract).
//!
//! # Example
//!
//! ```
//! use virgo_sim::{Cycle, Frequency};
//!
//! let clk = Frequency::from_mhz(400);
//! let elapsed = Cycle::new(4_000_000);
//! // 4M cycles at 400 MHz is 10 ms of simulated time.
//! assert!((clk.cycles_to_seconds(elapsed) - 0.01).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activity;
pub mod cycle;
pub mod fault;
pub mod pipe;
pub mod rng;
pub mod sched;
pub mod stablehash;
pub mod stats;

pub use activity::{earliest, NextActivity};
pub use cycle::{Cycle, Frequency};
pub use fault::{
    ClusterFaultStats, EccInjector, EccStats, FaultEvent, FaultKind, FaultPlan, FaultStats,
};
pub use pipe::{BoundedQueue, DelayPipe};
pub use rng::SplitMix64;
pub use sched::EventQueue;
pub use stablehash::{StableHash, StableHasher};
pub use stats::{Counter, Ratio, RunningStats};
