//! Latency pipes and bounded queues used to model pipelined hardware.
//!
//! Two structures cover nearly every timing element in the simulator:
//!
//! * [`DelayPipe`] — items become visible a fixed or per-item number of
//!   cycles after insertion; models pipelined SRAMs, caches, floating-point
//!   units and DRAM access latency.
//! * [`BoundedQueue`] — a FIFO with finite capacity; models decoupling
//!   queues, load/store queues and operand buffers, providing back-pressure.

use std::collections::VecDeque;

use crate::Cycle;

/// A FIFO whose entries become available a configurable number of cycles
/// after they are pushed.
///
/// The pipe is unbounded: back-pressure, where needed, is modelled by the
/// producer checking a separate [`BoundedQueue`] or an occupancy limit before
/// pushing.
///
/// # Example
///
/// ```
/// use virgo_sim::{Cycle, DelayPipe};
///
/// let mut pipe: DelayPipe<&'static str> = DelayPipe::new(3);
/// pipe.push(Cycle::new(10), "req");
/// assert_eq!(pipe.pop_ready(Cycle::new(12)), None);
/// assert_eq!(pipe.pop_ready(Cycle::new(13)), Some("req"));
/// ```
#[derive(Debug, Clone)]
pub struct DelayPipe<T> {
    latency: u64,
    entries: VecDeque<(Cycle, T)>,
}

impl<T> DelayPipe<T> {
    /// Creates a pipe with a fixed `latency` in cycles applied to every item.
    pub fn new(latency: u64) -> Self {
        DelayPipe {
            latency,
            entries: VecDeque::new(),
        }
    }

    /// The fixed latency applied by [`DelayPipe::push`].
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Inserts an item at cycle `now`; it becomes ready at `now + latency`.
    pub fn push(&mut self, now: Cycle, item: T) {
        self.push_with_latency(now, self.latency, item);
    }

    /// Inserts an item with an explicit per-item latency, overriding the
    /// pipe's default. Items must still be pushed in non-decreasing ready
    /// order for FIFO semantics to hold; this is asserted in debug builds.
    pub fn push_with_latency(&mut self, now: Cycle, latency: u64, item: T) {
        let ready = now.plus(latency);
        debug_assert!(
            self.entries.back().is_none_or(|(r, _)| *r <= ready),
            "DelayPipe entries must be pushed in non-decreasing ready order"
        );
        self.entries.push_back((ready, item));
    }

    /// Removes and returns the oldest item if it is ready at cycle `now`.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        if self.front_ready(now) {
            self.entries.pop_front().map(|(_, item)| item)
        } else {
            None
        }
    }

    /// Returns a reference to the oldest item if it is ready at cycle `now`.
    pub fn peek_ready(&self, now: Cycle) -> Option<&T> {
        if self.front_ready(now) {
            self.entries.front().map(|(_, item)| item)
        } else {
            None
        }
    }

    fn front_ready(&self, now: Cycle) -> bool {
        self.entries.front().is_some_and(|(ready, _)| *ready <= now)
    }

    /// Number of in-flight items (ready or not).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no items are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drains every item that is ready at cycle `now`, preserving order.
    pub fn drain_ready(&mut self, now: Cycle) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(item) = self.pop_ready(now) {
            out.push(item);
        }
        out
    }
}

/// A FIFO queue with a hard capacity, used to model hardware buffers that
/// exert back-pressure when full.
///
/// # Example
///
/// ```
/// use virgo_sim::BoundedQueue;
///
/// let mut q = BoundedQueue::new(2);
/// assert!(q.push(1).is_ok());
/// assert!(q.push(2).is_ok());
/// assert_eq!(q.push(3), Err(3));
/// assert_eq!(q.pop(), Some(1));
/// assert!(q.has_space());
/// ```
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    capacity: usize,
    entries: VecDeque<T>,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        BoundedQueue {
            capacity,
            entries: VecDeque::with_capacity(capacity),
        }
    }

    /// Maximum number of entries the queue can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the queue holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when at least one more entry can be pushed.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Attempts to enqueue an item.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` (giving the item back to the caller) when the queue
    /// is full, modelling back-pressure.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.has_space() {
            self.entries.push_back(item);
            Ok(())
        } else {
            Err(item)
        }
    }

    /// Dequeues the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        self.entries.pop_front()
    }

    /// Returns a reference to the oldest item, if any.
    pub fn front(&self) -> Option<&T> {
        self.entries.front()
    }

    /// Iterates over queued items from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_pipe_respects_latency() {
        let mut p = DelayPipe::new(5);
        p.push(Cycle::new(0), 'a');
        p.push(Cycle::new(1), 'b');
        assert!(p.peek_ready(Cycle::new(4)).is_none());
        assert_eq!(p.pop_ready(Cycle::new(5)), Some('a'));
        assert_eq!(p.pop_ready(Cycle::new(5)), None);
        assert_eq!(p.pop_ready(Cycle::new(6)), Some('b'));
        assert!(p.is_empty());
    }

    #[test]
    fn delay_pipe_zero_latency_is_same_cycle() {
        let mut p = DelayPipe::new(0);
        p.push(Cycle::new(7), 42u32);
        assert_eq!(p.peek_ready(Cycle::new(7)), Some(&42));
        assert_eq!(p.pop_ready(Cycle::new(7)), Some(42));
    }

    #[test]
    fn delay_pipe_drain_ready_preserves_order() {
        let mut p = DelayPipe::new(1);
        for i in 0..4 {
            p.push(Cycle::new(i), i);
        }
        assert_eq!(p.drain_ready(Cycle::new(2)), vec![0, 1]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.drain_ready(Cycle::new(100)), vec![2, 3]);
    }

    #[test]
    fn delay_pipe_per_item_latency() {
        let mut p = DelayPipe::new(2);
        p.push_with_latency(Cycle::new(0), 1, "fast");
        p.push_with_latency(Cycle::new(0), 10, "slow");
        assert_eq!(p.pop_ready(Cycle::new(1)), Some("fast"));
        assert_eq!(p.pop_ready(Cycle::new(9)), None);
        assert_eq!(p.pop_ready(Cycle::new(10)), Some("slow"));
    }

    #[test]
    fn bounded_queue_backpressure() {
        let mut q = BoundedQueue::new(1);
        assert_eq!(q.capacity(), 1);
        assert!(q.push(10).is_ok());
        assert!(!q.has_space());
        assert_eq!(q.push(11), Err(11));
        assert_eq!(q.front(), Some(&10));
        assert_eq!(q.pop(), Some(10));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bounded_queue_iterates_fifo_order() {
        let mut q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        let items: Vec<_> = q.iter().copied().collect();
        assert_eq!(items, vec![0, 1, 2, 3]);
        assert_eq!(q.len(), 4);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn bounded_queue_zero_capacity_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }
}
