//! A tiny deterministic pseudo-random generator.
//!
//! The timing model is fully deterministic, but a few places need
//! arbitrary-but-reproducible values: generating synthetic matrix data for
//! functional validation, and choosing victim ways when several cache lines
//! tie for eviction. [`SplitMix64`] is small, fast and has no dependencies.

/// The SplitMix64 pseudo-random number generator.
///
/// # Example
///
/// ```
/// use virgo_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic per seed
/// let x = a.next_f32_signed();
/// assert!((-1.0..=1.0).contains(&x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed, including zero, is valid.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Returns a pseudo-random value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        self.next_u64() % bound
    }

    /// Returns a pseudo-random `f32` uniformly distributed in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Returns a pseudo-random `f32` uniformly distributed in `[-1, 1)`.
    pub fn next_f32_signed(&mut self) -> f32 {
        self.next_f32() * 2.0 - 1.0
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(SEED_DEFAULT)
    }
}

/// Default seed used by [`SplitMix64::default`].
const SEED_DEFAULT: u64 = 0x5EED_0001;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn float_ranges() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..1000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f32_signed();
            assert!((-1.0..1.0).contains(&y));
        }
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(rng.next_below(13) < 13);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn next_below_zero_panics() {
        SplitMix64::new(1).next_below(0);
    }
}
