//! A deterministic event queue for the event-driven simulation driver.
//!
//! The fast-forward engine's first generation re-polled every component's
//! [`crate::NextActivity`] horizon once per cycle and jumped only when the
//! *global* minimum was in the future — cost proportional to cycles ×
//! components. [`EventQueue`] inverts that: each component registers the
//! cycle of its next event once, the driver pops the earliest `(cycle,
//! component)` pair, and components whose horizon has not changed are never
//! re-queried. Simulation cost then scales with *events*, not cycles.
//!
//! # Determinism
//!
//! Entries are ordered by `(cycle, component-id)`. The driver processes all
//! components due at a cycle in ascending id order — ids are assigned in the
//! naive loop's tick order, so event-driven execution visits components in
//! exactly the reference sequence and stays bit-identical.
//!
//! # Duplicate and conservative wakes
//!
//! Scheduling the same component twice, or earlier than its true next event,
//! is always safe: ticking a component on a cycle where it has nothing to do
//! is precisely what the naive loop does every cycle. The queue deduplicates
//! the common case (an entry at or before the requested cycle is already
//! pending) to keep the heap small, but correctness never depends on it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cycle::Cycle;

/// No pending entry for a component (sentinel in the dedup table).
const NONE_PENDING: u64 = u64::MAX;

/// A deterministic binary-heap event queue keyed on `(cycle, component-id)`.
///
/// # Example
///
/// ```
/// use virgo_sim::sched::EventQueue;
/// use virgo_sim::Cycle;
///
/// let mut q = EventQueue::new(3);
/// q.schedule(2, Cycle::new(10));
/// q.schedule(0, Cycle::new(10));
/// q.schedule(1, Cycle::new(4));
/// assert_eq!(q.next_cycle(), Some(4));
///
/// let mut due = vec![false; 3];
/// q.pop_due(4, &mut due);
/// assert_eq!(due, vec![false, true, false]);
///
/// // Both remaining components are due at cycle 10, in id order.
/// due.fill(false);
/// q.pop_due(q.next_cycle().unwrap(), &mut due);
/// assert_eq!(due, vec![true, false, true]);
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Earliest pending entry per component, [`NONE_PENDING`] when none.
    pending: Vec<u64>,
}

impl EventQueue {
    /// Creates an empty queue for `components` component ids.
    pub fn new(components: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: vec![NONE_PENDING; components],
        }
    }

    /// Registers component `id`'s next event at cycle `at`. A pending entry
    /// at or before `at` already covers it; a *later* pending entry is not
    /// removed (the extra pop is a harmless spurious tick), but the earlier
    /// one is recorded so the event is never missed.
    pub fn schedule(&mut self, id: u32, at: Cycle) {
        let at = at.get();
        if self.pending[id as usize] <= at {
            return;
        }
        self.pending[id as usize] = at;
        self.heap.push(Reverse((at, id)));
    }

    /// The earliest scheduled cycle, or `None` when the queue is drained.
    pub fn next_cycle(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((cycle, _))| *cycle)
    }

    /// Pops every entry scheduled for exactly `cycle` and marks its
    /// component in `due`. Duplicate entries collapse onto the same flag.
    ///
    /// # Panics
    ///
    /// Panics if `due` is shorter than the component count.
    pub fn pop_due(&mut self, cycle: u64, due: &mut [bool]) {
        while let Some(Reverse((at, id))) = self.heap.peek().copied() {
            if at != cycle {
                debug_assert!(at > cycle, "events must be processed in order");
                break;
            }
            self.heap.pop();
            due[id as usize] = true;
            if self.pending[id as usize] <= at {
                self.pending[id as usize] = NONE_PENDING;
            }
        }
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending entries (duplicates included).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Drops every pending entry (used when a naive burst re-synchronizes
    /// all components and the driver re-registers every horizon afresh).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.fill(NONE_PENDING);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_cycle_then_id_order() {
        let mut q = EventQueue::new(4);
        q.schedule(3, Cycle::new(7));
        q.schedule(1, Cycle::new(7));
        q.schedule(2, Cycle::new(5));
        assert_eq!(q.next_cycle(), Some(5));
        let mut due = vec![false; 4];
        q.pop_due(5, &mut due);
        assert_eq!(due, vec![false, false, true, false]);
        due.fill(false);
        assert_eq!(q.next_cycle(), Some(7));
        q.pop_due(7, &mut due);
        assert_eq!(due, vec![false, true, false, true]);
        assert!(q.is_empty());
    }

    #[test]
    fn duplicate_schedules_dedupe() {
        let mut q = EventQueue::new(1);
        q.schedule(0, Cycle::new(3));
        q.schedule(0, Cycle::new(3));
        q.schedule(0, Cycle::new(9));
        assert_eq!(q.len(), 1, "covered schedules must not grow the heap");
    }

    #[test]
    fn earlier_reschedule_is_never_lost() {
        let mut q = EventQueue::new(2);
        q.schedule(0, Cycle::new(10));
        q.schedule(0, Cycle::new(4)); // supersedes: must fire at 4
        assert_eq!(q.next_cycle(), Some(4));
        let mut due = vec![false; 2];
        q.pop_due(4, &mut due);
        assert!(due[0]);
        // The stale entry at 10 survives as a spurious (harmless) wake.
        assert_eq!(q.next_cycle(), Some(10));
    }

    #[test]
    fn clear_resets_dedup_state() {
        let mut q = EventQueue::new(1);
        q.schedule(0, Cycle::new(3));
        q.clear();
        assert!(q.is_empty());
        q.schedule(0, Cycle::new(3));
        assert_eq!(q.len(), 1, "clear must forget the old pending entry");
    }
}
