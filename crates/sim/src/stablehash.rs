//! A stable, process-independent structural hash.
//!
//! The sweep engine memoizes simulation reports keyed by a digest of the
//! simulation *inputs* — `(GpuConfig, Kernel, max_cycles, SimMode)`. The
//! standard library's `Hash`/`Hasher` machinery is unsuitable for that key:
//! `DefaultHasher` is explicitly allowed to change between releases and is
//! randomized in some configurations, and the on-disk cache must produce the
//! same file names across processes, builds and machines. [`StableHasher`]
//! instead builds on the same SplitMix64 finalizer the simulator already uses
//! for deterministic randomness ([`crate::SplitMix64`]): every absorbed word
//! passes through the finalizer on two independently-seeded lanes, yielding a
//! 128-bit digest whose value is fixed by this crate (changing the hash is a
//! cache-format change, not a compiler upgrade).
//!
//! Types opt in by implementing [`StableHash`], a visitor-style trait that
//! absorbs the type's fields in declaration order. Enums must absorb a
//! variant discriminant first; variable-length collections absorb their
//! length first (both are provided by the blanket impls below where
//! possible). The derived digest is *structural*: two values hash equal iff
//! their serialized field streams are identical.

/// The SplitMix64 finalizer: a fast, well-mixed 64-bit permutation.
#[inline]
fn mix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A 128-bit stable structural hasher (two independent SplitMix64 lanes).
///
/// # Example
///
/// ```
/// use virgo_sim::{StableHash, StableHasher};
///
/// let mut a = StableHasher::new();
/// 42u64.stable_hash(&mut a);
/// let mut b = StableHasher::new();
/// 42u64.stable_hash(&mut b);
/// assert_eq!(a.finish128(), b.finish128());
/// let mut c = StableHasher::new();
/// 43u64.stable_hash(&mut c);
/// assert_ne!(a.finish128(), c.finish128());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StableHasher {
    lo: u64,
    hi: u64,
}

impl StableHasher {
    /// Creates a hasher in its fixed initial state.
    pub const fn new() -> Self {
        // Arbitrary distinct constants; part of the cache format.
        StableHasher {
            lo: 0x5157_4EED_0000_0001,
            hi: 0xC0FF_EE00_DEAD_BEEF,
        }
    }

    /// Absorbs one 64-bit word.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.lo = mix(self.lo ^ v);
        self.hi = mix(self.hi ^ v.rotate_left(32) ^ 0xA5A5_A5A5_A5A5_A5A5);
    }

    /// Absorbs a byte string (length-prefixed, so `("ab", "c")` and
    /// `("a", "bc")` hash differently).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    /// Absorbs a UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Returns the 128-bit digest as `(hi, lo)`.
    pub fn finish128(&self) -> (u64, u64) {
        // One extra round so trailing zero-words still perturb both lanes.
        (mix(self.hi ^ self.lo.rotate_left(17)), mix(self.lo))
    }

    /// Returns the digest as a fixed-width 32-character lower-case hex
    /// string, usable as a file name.
    pub fn finish_hex(&self) -> String {
        let (hi, lo) = self.finish128();
        format!("{hi:016x}{lo:016x}")
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

/// A type with a stable structural hash. See the module docs for the
/// implementation rules (discriminants for enums, length prefixes for
/// collections).
pub trait StableHash {
    /// Absorbs `self` into the hasher.
    fn stable_hash(&self, h: &mut StableHasher);
}

macro_rules! impl_stable_hash_int {
    ($($t:ty),*) => {
        $(impl StableHash for $t {
            #[inline]
            fn stable_hash(&self, h: &mut StableHasher) {
                h.write_u64(*self as u64);
            }
        })*
    };
}

impl_stable_hash_int!(u8, u16, u32, u64, usize);

impl StableHash for bool {
    #[inline]
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(u64::from(*self));
    }
}

impl StableHash for str {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl StableHash for String {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl<T: StableHash> StableHash for Option<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            None => h.write_u64(0),
            Some(v) => {
                h.write_u64(1);
                v.stable_hash(h);
            }
        }
    }
}

impl<T: StableHash> StableHash for [T] {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.len() as u64);
        for item in self {
            item.stable_hash(h);
        }
    }
}

impl<T: StableHash> StableHash for Vec<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_slice().stable_hash(h);
    }
}

impl<T: StableHash + ?Sized> StableHash for &T {
    fn stable_hash(&self, h: &mut StableHasher) {
        (**self).stable_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of<T: StableHash + ?Sized>(v: &T) -> (u64, u64) {
        let mut h = StableHasher::new();
        v.stable_hash(&mut h);
        h.finish128()
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(&123u64), hash_of(&123u64));
        assert_eq!(hash_of("abc"), hash_of(&"abc".to_string()));
    }

    #[test]
    fn pinned_digest_is_part_of_the_cache_format() {
        // Changing the hash function silently invalidates every on-disk
        // cache entry; this pin makes such a change an explicit decision.
        let mut h = StableHasher::new();
        h.write_u64(0);
        h.write_str("virgo");
        assert_eq!(h.finish_hex(), "13d282cdbc44c40285d1ab3c4d785517");
    }

    #[test]
    fn length_prefix_disambiguates_concatenation() {
        let ab_c = {
            let mut h = StableHasher::new();
            h.write_str("ab");
            h.write_str("c");
            h.finish128()
        };
        let a_bc = {
            let mut h = StableHasher::new();
            h.write_str("a");
            h.write_str("bc");
            h.finish128()
        };
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn option_and_slice_are_disambiguated() {
        assert_ne!(hash_of(&Option::<u64>::None), hash_of(&Some(0u64)));
        assert_ne!(hash_of(&vec![0u64]), hash_of(&vec![0u64, 0]));
        assert_ne!(hash_of(&vec![1u64, 2]), hash_of(&vec![2u64, 1]));
    }

    #[test]
    fn trailing_zeros_change_the_digest() {
        let mut a = StableHasher::new();
        a.write_u64(7);
        let mut b = StableHasher::new();
        b.write_u64(7);
        b.write_u64(0);
        assert_ne!(a.finish128(), b.finish128());
    }

    #[test]
    fn hex_is_fixed_width() {
        let mut h = StableHasher::new();
        h.write_u64(1);
        assert_eq!(h.finish_hex().len(), 32);
    }
}
