//! Counters and derived statistics used throughout the simulator.
//!
//! Hardware utilization and energy accounting both reduce to counting events
//! (instructions issued, MACs performed, SRAM words accessed, ...). The types
//! in this module keep that counting explicit and cheap.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use virgo_sim::Counter;
///
/// let mut issued = Counter::new();
/// issued.add(3);
/// issued.incr();
/// assert_eq!(issued.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter starting at zero.
    #[inline]
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments the counter by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n` events to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the current count as `f64` for ratio computations.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::ops::AddAssign<u64> for Counter {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

/// A ratio of two event counts, typically "useful work / capacity".
///
/// Used for MAC utilization (Table 3 of the paper) and issue-slot utilization.
///
/// # Example
///
/// ```
/// use virgo_sim::Ratio;
///
/// let util = Ratio::new(661, 1000);
/// assert!((util.as_fraction() - 0.661).abs() < 1e-12);
/// assert_eq!(format!("{util}"), "66.1%");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ratio {
    numerator: f64,
    denominator: f64,
}

impl Ratio {
    /// Creates a ratio from a numerator and denominator.
    ///
    /// A zero denominator yields a ratio of zero rather than NaN, which is the
    /// convenient convention for "utilization of hardware that never ran".
    pub fn new(numerator: impl Into<f64>, denominator: impl Into<f64>) -> Self {
        Ratio {
            numerator: numerator.into(),
            denominator: denominator.into(),
        }
    }

    /// Returns the ratio as a fraction in `[0, inf)`; zero if the denominator
    /// is zero.
    pub fn as_fraction(self) -> f64 {
        if self.denominator == 0.0 {
            0.0
        } else {
            self.numerator / self.denominator
        }
    }

    /// Returns the ratio as a percentage.
    pub fn as_percent(self) -> f64 {
        self.as_fraction() * 100.0
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.as_percent())
    }
}

/// Streaming mean / min / max statistics over a sequence of samples.
///
/// Used by the benchmark harness to summarize per-iteration measurements
/// (e.g. fence-poll interval lengths, Section 4.5.1 of the paper).
///
/// # Example
///
/// ```
/// use virgo_sim::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [250.0, 260.0, 270.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 260.0).abs() < 1e-12);
/// assert_eq!(s.min(), Some(250.0));
/// assert_eq!(s.max(), Some(270.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl RunningStats {
    /// Creates an empty statistics accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, sample: f64) {
        self.count += 1;
        self.sum += sample;
        self.sum_sq += sample * sample;
        self.min = Some(self.min.map_or(sample, |m| m.min(sample)));
        self.max = Some(self.max.map_or(sample, |m| m.max(sample)));
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the samples; zero if no samples have been observed.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population variance of the samples; zero if fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.mean();
        (self.sum_sq / n - mean * mean).max(0.0)
    }

    /// Population standard deviation of the samples.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, if any samples were observed.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest sample, if any samples were observed.
    pub fn max(&self) -> Option<f64> {
        self.max
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = RunningStats::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        c += 10;
        assert_eq!(c.get(), 20);
        assert_eq!(format!("{c}"), "20");
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(Ratio::new(5.0, 0.0).as_fraction(), 0.0);
        assert_eq!(Ratio::new(0.0, 0.0).as_percent(), 0.0);
    }

    #[test]
    fn ratio_percent_formatting() {
        let r = Ratio::new(1.0, 3.0);
        assert_eq!(format!("{r}"), "33.3%");
    }

    #[test]
    fn running_stats_mean_and_extremes() {
        let s: RunningStats = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert!((s.std_dev() - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn running_stats_empty_is_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn running_stats_single_sample_has_zero_variance() {
        let mut s = RunningStats::new();
        s.push(42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.mean(), 42.0);
    }
}
