//! SIMT core configuration.

use virgo_sim::{StableHash, StableHasher};

/// Microarchitectural parameters of one SIMT core (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Hardware warp slots per core.
    pub warps: u32,
    /// SIMT lanes per warp.
    pub lanes: u32,
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Integer ALU pipes per lane group (instructions per cycle).
    pub alu_units: u32,
    /// FPU pipes per lane group (instructions per cycle).
    pub fpu_units: u32,
    /// Memory instructions accepted by the LSU per cycle.
    pub lsu_width: u32,
    /// Load/store queue entries (maximum outstanding memory instructions per
    /// core).
    pub lsq_entries: u32,
    /// Register file capacity in KiB (integer + floating point).
    pub regfile_kib: u32,
    /// Cycles between busy-register polls while a warp spins in
    /// `virgo_fence` (used to account polling instructions, Section 4.5.1).
    pub fence_poll_interval: u32,
    /// Instructions fetched per L1I cache access (line granularity).
    pub instrs_per_icache_access: u32,
}

impl CoreConfig {
    /// The Table 2 configuration: 8 warps × 8 lanes, 2 ALUs, 1 FPU,
    /// 32-entry LSQ, 16 KiB register file.
    pub fn vortex_default() -> Self {
        CoreConfig {
            warps: 8,
            lanes: 8,
            issue_width: 1,
            alu_units: 2,
            fpu_units: 1,
            lsu_width: 1,
            lsq_entries: 32,
            regfile_kib: 16,
            fence_poll_interval: 8,
            instrs_per_icache_access: 8,
        }
    }

    /// Total threads resident on the core.
    pub fn threads(&self) -> u32 {
        self.warps * self.lanes
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::vortex_default()
    }
}

impl StableHash for CoreConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(u64::from(self.warps));
        h.write_u64(u64::from(self.lanes));
        h.write_u64(u64::from(self.issue_width));
        h.write_u64(u64::from(self.alu_units));
        h.write_u64(u64::from(self.fpu_units));
        h.write_u64(u64::from(self.lsu_width));
        h.write_u64(u64::from(self.lsq_entries));
        h.write_u64(u64::from(self.regfile_kib));
        h.write_u64(u64::from(self.fence_poll_interval));
        h.write_u64(u64::from(self.instrs_per_icache_access));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2() {
        let c = CoreConfig::vortex_default();
        assert_eq!(c.warps, 8);
        assert_eq!(c.lanes, 8);
        assert_eq!(c.threads(), 64);
        assert_eq!(c.alu_units, 2);
        assert_eq!(c.fpu_units, 1);
        assert_eq!(c.lsq_entries, 32);
    }

    #[test]
    fn default_trait_matches_constructor() {
        assert_eq!(CoreConfig::default(), CoreConfig::vortex_default());
    }
}
