//! The SIMT core: warp scheduling, instruction issue, execution pipelines.

use std::sync::Arc;

use virgo_isa::{LaneAccess, Program, WarpOp};
use virgo_sim::{earliest, Cycle};

use crate::config::CoreConfig;
use crate::port::ClusterPort;
use crate::stats::CoreStats;
use crate::warp::{BlockReason, WarpContext};

/// A point-in-time view of one warp's scheduling state, used to build the
/// structured deadlock diagnosis attached to `SimError::Timeout`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpSnapshot {
    /// Cluster-unique warp id.
    pub global_id: u32,
    /// True once the warp has retired its whole program and drained its
    /// loads.
    pub finished: bool,
    /// Why the warp cannot issue, if it is blocked.
    pub block: Option<BlockReason>,
    /// Loads still in flight.
    pub loads_in_flight: usize,
}

/// What one [`SimtCore::tick`] did, as cheap hints for the event-driven
/// driver (`SimMode::FastForward`). All fields are computed from work the
/// tick performs anyway, so consuming them costs nothing extra; the naive
/// per-cycle loop simply ignores the value.
#[derive(Debug, Clone, Copy, Default)]
pub struct TickOutcome {
    /// Instructions issued this cycle (the input to the active/stall/idle
    /// classification). Synchronization pseudo-operations (`vx_bar`,
    /// `WaitLoads`, fences) resolve without consuming an issue slot and are
    /// not counted here.
    pub issued: u32,
    /// A warp was ready this cycle but could not issue for a reason that
    /// retries every cycle (functional-unit slot or LSQ contention, a full
    /// device inbox, issue-width exhaustion). Such a core is guaranteed
    /// active at `now + 1`, so the driver can re-schedule it without paying
    /// for a [`SimtCore::next_activity`] probe. Hazard-blocked `HmmaStep`
    /// retries are deliberately excluded: those are pure no-ops until the
    /// tensor unit frees, and the probe parks the core at `busy_until`
    /// instead.
    pub retry_next: bool,
    /// The tick may have mutated state outside the core — it issued a real
    /// instruction or arrived at a barrier. When false, the driver can skip
    /// its cross-component signature checks (barrier releases, device
    /// inboxes, fabric transfers): every other path through the tick only
    /// reads through the port.
    pub acted: bool,
    /// A warp transitioned to finished during this tick (last instruction
    /// consumed, final load drained, or final unblock). This is the only
    /// core-side event that can flip the machine-wide finish check, so the
    /// driver gates that walk on it.
    pub warp_retired: bool,
    /// The core's event horizon after this tick, folded from the per-warp
    /// state the issue scan walks anyway: the earliest in-flight load
    /// completion and the tensor unit's `busy_until` for hazard-parked
    /// `HmmaStep` warps. Follows the [`SimtCore::next_activity`] contract
    /// (`None` = dormant until an external wake; barrier / fence / drain
    /// releases arrive through the driver's cross-component signature
    /// checks). Only meaningful when `retry_next` is false — a guaranteed
    /// next-cycle retry supersedes it — and it spares the driver a separate
    /// post-tick [`SimtCore::next_activity`] probe, which re-walks every
    /// warp.
    pub horizon: Option<Cycle>,
}

impl TickOutcome {
    /// Folds one event time into the horizon (earliest wins).
    fn fold_horizon(&mut self, t: Cycle) {
        self.horizon = Some(match self.horizon {
            Some(h) => h.min(t),
            None => t,
        });
    }
}

/// One SIMT core of the cluster.
///
/// The core executes the warps assigned to it, issuing up to
/// `issue_width` instructions per cycle subject to functional-unit
/// availability (ALU/FPU/LSU/tensor), the load/store queue capacity, and the
/// blocking semantics of synchronization operations. Everything outside the
/// core — memories, matrix units, DMA, barriers — is reached through the
/// [`ClusterPort`] passed to [`SimtCore::tick`].
#[derive(Debug)]
pub struct SimtCore {
    config: CoreConfig,
    core_id: u32,
    warps: Vec<WarpContext>,
    stats: CoreStats,
    /// Round-robin pointer for warp scheduling fairness.
    next_warp: usize,
    /// Reusable lane-address buffer for [`SimtCore::memory_access`], so the
    /// load/store hot path allocates nothing per instruction.
    lane_scratch: Vec<u64>,
}

impl SimtCore {
    /// Creates a core with no warps assigned.
    pub fn new(config: CoreConfig, core_id: u32) -> Self {
        SimtCore {
            config,
            core_id,
            warps: Vec::new(),
            stats: CoreStats::default(),
            next_warp: 0,
            lane_scratch: Vec::new(),
        }
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Index of this core within the cluster.
    pub fn core_id(&self) -> u32 {
        self.core_id
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Assigns a warp running `program` to the core.
    ///
    /// # Panics
    ///
    /// Panics if the core already holds its full complement of hardware
    /// warps.
    pub fn assign_warp(&mut self, global_id: u32, program: &Arc<Program>) {
        assert!(
            (self.warps.len() as u32) < self.config.warps,
            "core {} already has {} warps",
            self.core_id,
            self.warps.len()
        );
        self.warps.push(WarpContext::new(global_id, program));
    }

    /// Number of warps assigned.
    pub fn warp_count(&self) -> usize {
        self.warps.len()
    }

    /// Re-anchors every warp's fence-poll rate limiter at `at` (see
    /// [`WarpContext::anchor_fence_polls`]). Called when the core is built
    /// into a cluster slot that leaves reset at a non-zero cycle.
    pub fn anchor_fence_polls(&mut self, at: Cycle) {
        for warp in &mut self.warps {
            warp.anchor_fence_polls(at);
        }
    }

    /// True once every assigned warp has finished.
    pub fn all_finished(&self) -> bool {
        self.warps.iter().all(|w| w.is_finished())
    }

    /// Snapshots the scheduling state of every assigned warp, for timeout
    /// diagnosis.
    pub fn warp_snapshots(&self) -> Vec<WarpSnapshot> {
        self.warps
            .iter()
            .map(|w| WarpSnapshot {
                global_id: w.global_id,
                finished: w.is_finished(),
                block: w.block_reason(),
                loads_in_flight: w.loads_in_flight(),
            })
            .collect()
    }

    /// Advances the core by one cycle.
    ///
    /// The returned [`TickOutcome`] carries cheap liveness hints for the
    /// event-driven driver, computed from work the tick does anyway: whether
    /// a ready warp is guaranteed to retry next cycle (skip the horizon
    /// probe), whether anything outside the core may have changed (skip the
    /// cross-component signature checks), and whether a warp just finished
    /// (the only moment the machine-wide finish check can flip).
    pub fn tick(&mut self, now: Cycle, port: &mut dyn ClusterPort) -> TickOutcome {
        self.stats.total_cycles += 1;
        if self.warps.is_empty() {
            self.stats.idle_cycles += 1;
            return TickOutcome::default();
        }

        let mut outcome = TickOutcome::default();
        self.retire_and_unblock(now, port, &mut outcome);
        self.issue(now, port, &mut outcome);

        if outcome.issued > 0 {
            self.stats.active_cycles += 1;
        } else if self.warps.iter().any(|w| w.is_runnable()) {
            self.stats.stall_cycles += 1;
        } else {
            self.stats.idle_cycles += 1;
        }
        outcome
    }

    /// Reports the earliest cycle `>= now` at which ticking this core can do
    /// anything beyond time-uniform stall/idle accounting, or `None` when the
    /// core will never act again on its own (all warps finished, or blocked
    /// on conditions only *other* agents can satisfy).
    ///
    /// This is the core-side half of the fast-forward engine's soundness
    /// argument (see `virgo_sim::activity`):
    ///
    /// * A warp that could attempt to issue pins the horizon to `now` —
    ///   conservatively, since the attempt may still fail on a structural
    ///   hazard whose retry-per-cycle behavior must be replayed faithfully.
    ///   The one refined case is an `HmmaStep` retrying against a busy
    ///   tightly-coupled unit: the retries are pure no-ops (no statistics, no
    ///   state change) until the unit's `busy_until`, so such a warp
    ///   contributes that cycle instead of `now`. The window is only skipped
    ///   when *every* runnable warp of the core is hazard-blocked this way,
    ///   because any other runnable warp issues immediately.
    /// * A warp waiting on outstanding loads contributes the completion cycle
    ///   of its earliest load: retiring a load is the only time-driven event
    ///   that can change the warp's state or the core's stall classification.
    /// * A warp blocked on a barrier, tensor-unit drain or fence contributes
    ///   `now` if the condition is already satisfied (it unblocks on the next
    ///   tick) and nothing otherwise — progress on those conditions comes
    ///   from other cores or cluster devices, which report it themselves.
    ///
    /// Takes `&mut self` because inspecting the next operation may fetch it
    /// from the program cursor, exactly as the issue stage would.
    pub fn next_activity(&mut self, now: Cycle, port: &dyn ClusterPort) -> Option<Cycle> {
        let core_id = self.core_id;
        let mut next: Option<Cycle> = None;
        for warp in &mut self.warps {
            if warp.is_finished() {
                continue;
            }
            match warp.block_reason() {
                None => {
                    match warp.peek() {
                        // Structural-hazard refinement: an HMMA step retrying
                        // against a busy tightly-coupled unit does nothing
                        // observable until the unit frees.
                        Some((_, WarpOp::HmmaStep { .. })) => {
                            match port.hmma_busy_until(now, core_id) {
                                Some(t) if t > now => next = earliest(next, Some(t)),
                                _ => return Some(now),
                            }
                        }
                        Some(_) => return Some(now),
                        None => {}
                    }
                    // Loads still in flight (with the program drained, or
                    // behind a hazard-blocked HMMA step): the warp finishes /
                    // the stall classification can change only when they
                    // retire.
                    next = earliest(next, warp.earliest_load_done().map(|c| c.max(now)));
                }
                Some(BlockReason::Loads) => {
                    if warp.loads_in_flight() == 0 {
                        return Some(now);
                    }
                    next = earliest(next, warp.earliest_load_done().map(|c| c.max(now)));
                }
                Some(BlockReason::Barrier { id, ticket }) => {
                    if port.barrier_passed(id, ticket) {
                        return Some(now);
                    }
                }
                Some(BlockReason::WgmmaDrain) => {
                    if port.wgmma_pending(core_id) == 0 {
                        return Some(now);
                    }
                }
                Some(BlockReason::Fence { max_outstanding }) => {
                    if port.async_outstanding() <= max_outstanding {
                        return Some(now);
                    }
                }
            }
        }
        next
    }

    /// Bulk-replays `cycles` ticks of a quiescent window starting at `from`,
    /// during which the caller guarantees (via [`SimtCore::next_activity`])
    /// that no warp can issue, unblock, or retire a load.
    ///
    /// Produces statistics bit-identical to ticking the core `cycles` times:
    /// total cycles, the stall/idle classification (which is constant across
    /// the window because no warp's runnability can change), fence wait
    /// cycles, and the rate-limited fence poll instructions.
    pub fn fast_forward(&mut self, from: Cycle, cycles: u64) {
        if cycles == 0 {
            return;
        }
        self.stats.total_cycles += cycles;
        if self.warps.is_empty() {
            self.stats.idle_cycles += cycles;
            return;
        }
        let mut fence_waiting = false;
        let interval = self.config.fence_poll_interval;
        for warp in &mut self.warps {
            if let Some(BlockReason::Fence { .. }) = warp.block_reason() {
                fence_waiting = true;
                self.stats.fence_poll_instrs +=
                    warp.fast_forward_fence_polls(from, cycles, interval);
            }
        }
        if fence_waiting {
            self.stats.fence_wait_cycles += cycles;
        }
        if self.warps.iter().any(WarpContext::is_runnable) {
            self.stats.stall_cycles += cycles;
        } else {
            self.stats.idle_cycles += cycles;
        }
    }

    /// Retires completed loads and releases warps whose blocking condition
    /// has been satisfied. Only reads through the port; flags warps that
    /// finish here (final load drained / final unblock) in `outcome`.
    fn retire_and_unblock(
        &mut self,
        now: Cycle,
        port: &mut dyn ClusterPort,
        outcome: &mut TickOutcome,
    ) {
        let mut fence_waiting = false;
        for warp in &mut self.warps {
            let retired = warp.retire_loads(now);
            let mut unblocked = false;
            match warp.block_reason() {
                None => {}
                Some(BlockReason::Loads) if warp.loads_in_flight() == 0 => {
                    warp.unblock();
                    unblocked = true;
                }
                Some(BlockReason::Loads) => {}
                Some(BlockReason::Barrier { id, ticket }) if port.barrier_passed(id, ticket) => {
                    warp.unblock();
                    unblocked = true;
                }
                Some(BlockReason::Barrier { .. }) => {}
                Some(BlockReason::WgmmaDrain) if port.wgmma_pending(self.core_id) == 0 => {
                    warp.unblock();
                    unblocked = true;
                }
                Some(BlockReason::WgmmaDrain) => {}
                Some(BlockReason::Fence { max_outstanding }) => {
                    if port.async_outstanding() <= max_outstanding {
                        warp.unblock();
                        unblocked = true;
                    } else {
                        fence_waiting = true;
                        if warp.fence_poll_due(now, self.config.fence_poll_interval) {
                            self.stats.fence_poll_instrs += 1;
                        }
                    }
                }
            }
            if (retired > 0 || unblocked) && warp.is_finished() {
                outcome.warp_retired = true;
            }
        }
        if fence_waiting {
            self.stats.fence_wait_cycles += 1;
        }
    }

    /// Attempts to issue up to `issue_width` instructions; records the issue
    /// count and the driver hints in `outcome`.
    fn issue(&mut self, now: Cycle, port: &mut dyn ClusterPort, outcome: &mut TickOutcome) {
        let mut issued = 0u32;
        let mut alu_slots = self.config.alu_units;
        let mut fpu_slots = self.config.fpu_units;
        let mut lsu_slots = self.config.lsu_width;

        let warp_count = self.warps.len();
        let mut scanned = 0;
        let mut index = self.next_warp % warp_count;

        while issued < self.config.issue_width && scanned < warp_count {
            scanned += 1;
            let current = index;
            index = (index + 1) % warp_count;

            if !self.warps[current].is_runnable() {
                // Blocked warps still contribute to the event horizon: a
                // load-blocked warp wakes at its earliest completion; barrier
                // / fence / drain releases arrive as external wakes and
                // contribute nothing (see `next_activity`).
                if matches!(self.warps[current].block_reason(), Some(BlockReason::Loads)) {
                    if let Some(t) = self.warps[current].earliest_load_done() {
                        outcome.fold_horizon(t.max(now));
                    }
                }
                continue;
            }
            let Some((op_id, op)) = self.warps[current].peek() else {
                // Program drained but loads still in flight: the warp can
                // only finish (and flip the stall classification) when they
                // retire.
                if let Some(t) = self.warps[current].earliest_load_done() {
                    outcome.fold_horizon(t.max(now));
                }
                continue;
            };
            let exec_count = self.warps[current].exec_count(op_id);

            match op {
                // Synchronization pseudo-operations: resolved without
                // consuming an issue slot or issue energy.
                WarpOp::WaitLoads => {
                    if self.warps[current].loads_in_flight() == 0 {
                        self.warps[current].consume();
                        outcome.warp_retired |= self.warps[current].is_finished();
                        self.fold_warp_horizon(current, now, port, outcome);
                    } else {
                        self.warps[current].block(BlockReason::Loads);
                        if let Some(t) = self.warps[current].earliest_load_done() {
                            outcome.fold_horizon(t.max(now));
                        }
                    }
                    continue;
                }
                WarpOp::WgmmaWait => {
                    if port.wgmma_pending(self.core_id) == 0 {
                        self.warps[current].consume();
                        outcome.warp_retired |= self.warps[current].is_finished();
                        self.fold_warp_horizon(current, now, port, outcome);
                    } else {
                        self.warps[current].block(BlockReason::WgmmaDrain);
                    }
                    continue;
                }
                WarpOp::Barrier { id } => {
                    let global_id = self.warps[current].global_id;
                    let ticket = port.barrier_arrive(id, global_id);
                    self.stats.barrier_arrivals += 1;
                    // The vx_bar instruction itself occupies an issue slot.
                    self.stats.instrs_issued += 1;
                    self.warps[current].consume();
                    self.warps[current].block(BlockReason::Barrier { id, ticket });
                    // Arriving can release the barrier for every waiting core.
                    outcome.acted = true;
                    continue;
                }
                WarpOp::FenceAsync { max_outstanding } => {
                    // The first busy-register poll of the fence is an issued
                    // load instruction; subsequent polls while blocked are
                    // accounted separately as fence_poll_instrs.
                    self.stats.instrs_issued += 1;
                    self.warps[current].consume();
                    if port.async_outstanding() > max_outstanding {
                        self.warps[current].block(BlockReason::Fence { max_outstanding });
                    } else {
                        outcome.warp_retired |= self.warps[current].is_finished();
                        self.fold_warp_horizon(current, now, port, outcome);
                    }
                    continue;
                }
                _ => {}
            }

            // Real instructions below need an issue slot and possibly a
            // functional unit.
            let ok = match op {
                WarpOp::Alu { .. } => {
                    if alu_slots == 0 {
                        false
                    } else {
                        alu_slots -= 1;
                        self.stats.alu_lane_ops += u64::from(self.config.lanes);
                        true
                    }
                }
                WarpOp::Fpu { flops_per_lane, .. } => {
                    if fpu_slots == 0 {
                        false
                    } else {
                        fpu_slots -= 1;
                        self.stats.fpu_lane_ops +=
                            u64::from(self.config.lanes) * u64::from(flops_per_lane.max(1));
                        true
                    }
                }
                WarpOp::LoadGlobal { access } | WarpOp::LoadShared { access } => {
                    if lsu_slots == 0
                        || self.warps[current].loads_in_flight() >= self.config.lsq_entries as usize
                    {
                        false
                    } else {
                        lsu_slots -= 1;
                        let shared = matches!(op, WarpOp::LoadShared { .. });
                        let done =
                            self.memory_access(now, port, &access, exec_count, shared, false);
                        self.warps[current].push_load(done);
                        self.stats.lsu_lane_ops += u64::from(access.active_lanes);
                        true
                    }
                }
                WarpOp::StoreGlobal { access } | WarpOp::StoreShared { access } => {
                    if lsu_slots == 0 {
                        false
                    } else {
                        lsu_slots -= 1;
                        let shared = matches!(op, WarpOp::StoreShared { .. });
                        let _ = self.memory_access(now, port, &access, exec_count, shared, true);
                        self.stats.lsu_lane_ops += u64::from(access.active_lanes);
                        true
                    }
                }
                WarpOp::HmmaStep { macs, .. } => {
                    if port.try_hmma(now, self.core_id, macs) {
                        self.stats.hmma_steps += 1;
                        true
                    } else {
                        false
                    }
                }
                WarpOp::WgmmaInit(wgmma) => {
                    if port.try_wgmma(now, self.core_id, &wgmma, exec_count) {
                        self.stats.wgmma_ops += 1;
                        true
                    } else {
                        false
                    }
                }
                WarpOp::MmioWrite { device, cmd } => {
                    if port.mmio_write(now, self.core_id, device, &cmd, exec_count) {
                        self.stats.mmio_writes += 1;
                        true
                    } else {
                        false
                    }
                }
                WarpOp::Nop => true,
                // Handled above.
                WarpOp::WaitLoads
                | WarpOp::WgmmaWait
                | WarpOp::Barrier { .. }
                | WarpOp::FenceAsync { .. } => unreachable!("blocking ops handled earlier"),
            };

            if ok {
                self.warps[current].consume();
                outcome.warp_retired |= self.warps[current].is_finished();
                self.fold_warp_horizon(current, now, port, outcome);
                self.account_issue(&op);
                issued += 1;
                self.next_warp = index;
            } else if !matches!(op, WarpOp::HmmaStep { .. }) {
                // Slot/LSQ/inbox contention retries every cycle, so the core
                // is guaranteed active next cycle. Hazard-blocked HMMA steps
                // are excluded: they are no-ops until the tensor unit frees,
                // so the warp parks at its `busy_until` instead.
                outcome.retry_next = true;
            } else {
                match port.hmma_busy_until(now, self.core_id) {
                    Some(t) if t > now => outcome.fold_horizon(t),
                    _ => outcome.retry_next = true,
                }
                if let Some(t) = self.warps[current].earliest_load_done() {
                    outcome.fold_horizon(t.max(now));
                }
            }
        }
        // Stopping at the issue-width cap may leave ready warps unscanned.
        if issued == self.config.issue_width && scanned < warp_count {
            outcome.retry_next = true;
        }
        outcome.issued = issued;
        outcome.acted |= issued > 0;
    }

    /// Issues one warp memory access through the cluster port and returns its
    /// completion cycle.
    fn memory_access(
        &mut self,
        now: Cycle,
        port: &mut dyn ClusterPort,
        access: &LaneAccess,
        exec_count: u64,
        shared: bool,
        write: bool,
    ) -> Cycle {
        let mut lane_addrs = std::mem::take(&mut self.lane_scratch);
        lane_addrs.clear();
        lane_addrs.extend((0..access.active_lanes).map(|lane| access.lane_addr(lane, exec_count)));
        let done = if shared {
            port.shared_access(now, self.core_id, &lane_addrs, write)
        } else {
            port.global_access(now, self.core_id, &lane_addrs, access.bytes_per_lane, write)
        };
        self.lane_scratch = lane_addrs;
        done
    }

    /// Folds warp `current`'s post-scan contribution into `outcome`'s event
    /// horizon, mirroring the [`SimtCore::next_activity`] arms for an
    /// unblocked warp: a pending non-`HmmaStep` op means the warp acts next
    /// cycle (`retry_next`), a pending `HmmaStep` parks at the tensor unit's
    /// `busy_until`, and in-flight loads contribute their earliest
    /// completion.
    fn fold_warp_horizon(
        &mut self,
        current: usize,
        now: Cycle,
        port: &mut dyn ClusterPort,
        outcome: &mut TickOutcome,
    ) {
        match self.warps[current].peek() {
            Some((_, WarpOp::HmmaStep { .. })) => match port.hmma_busy_until(now, self.core_id) {
                Some(t) if t > now => outcome.fold_horizon(t),
                _ => outcome.retry_next = true,
            },
            Some(_) => outcome.retry_next = true,
            None => {}
        }
        if let Some(t) = self.warps[current].earliest_load_done() {
            outcome.fold_horizon(t.max(now));
        }
    }

    /// Updates per-instruction statistics after a successful issue.
    fn account_issue(&mut self, op: &WarpOp) {
        self.stats.instrs_issued += 1;
        if self
            .stats
            .instrs_issued
            .is_multiple_of(u64::from(self.config.instrs_per_icache_access.max(1)))
        {
            self.stats.icache_accesses += 1;
        }
        let lanes = u64::from(self.config.lanes);
        self.stats.rf_reads += u64::from(op.rf_reads()) * lanes;
        let writes = u64::from(op.rf_writes()) * lanes;
        self.stats.rf_writes += writes;
        if writes > 0 {
            self.stats.writebacks += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virgo_isa::{AddrExpr, DeviceId, MmioCommand, ProgramBuilder, WgmmaOp};

    /// A permissive test double for the cluster services.
    #[derive(Debug, Default)]
    struct FakePort {
        shared_calls: u32,
        global_calls: u32,
        hmma_calls: u32,
        hmma_busy: bool,
        hmma_free_at: Option<Cycle>,
        wgmma_calls: u32,
        wgmma_pending: u32,
        mmio_calls: u32,
        async_outstanding: u32,
        barrier_arrivals: u32,
        barrier_open: bool,
        mem_latency: u64,
    }

    impl ClusterPort for FakePort {
        fn shared_access(&mut self, now: Cycle, _core: u32, _lanes: &[u64], _write: bool) -> Cycle {
            self.shared_calls += 1;
            now.plus(self.mem_latency)
        }
        fn global_access(
            &mut self,
            now: Cycle,
            _core: u32,
            _lanes: &[u64],
            _bytes: u32,
            _write: bool,
        ) -> Cycle {
            self.global_calls += 1;
            now.plus(self.mem_latency)
        }
        fn try_hmma(&mut self, _now: Cycle, _core: u32, _macs: u32) -> bool {
            if self.hmma_busy {
                false
            } else {
                self.hmma_calls += 1;
                true
            }
        }
        fn hmma_busy_until(&self, _now: Cycle, _core: u32) -> Option<Cycle> {
            self.hmma_free_at
        }
        fn try_wgmma(&mut self, _now: Cycle, _core: u32, _op: &WgmmaOp, _exec: u64) -> bool {
            self.wgmma_calls += 1;
            true
        }
        fn wgmma_pending(&self, _core: u32) -> u32 {
            self.wgmma_pending
        }
        fn mmio_write(
            &mut self,
            _now: Cycle,
            _core: u32,
            _device: DeviceId,
            _cmd: &MmioCommand,
            _exec: u64,
        ) -> bool {
            self.mmio_calls += 1;
            true
        }
        fn async_outstanding(&self) -> u32 {
            self.async_outstanding
        }
        fn barrier_arrive(&mut self, _id: u8, _warp: u32) -> u64 {
            self.barrier_arrivals += 1;
            0
        }
        fn barrier_passed(&self, _id: u8, _ticket: u64) -> bool {
            self.barrier_open
        }
    }

    fn core_with_program(build: impl FnOnce(&mut ProgramBuilder)) -> SimtCore {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        let program = Arc::new(b.build());
        let mut core = SimtCore::new(CoreConfig::vortex_default(), 0);
        core.assign_warp(0, &program);
        core
    }

    fn run(core: &mut SimtCore, port: &mut FakePort, max_cycles: u64) -> u64 {
        for cycle in 0..max_cycles {
            if core.all_finished() {
                return cycle;
            }
            core.tick(Cycle::new(cycle), port);
        }
        max_cycles
    }

    #[test]
    fn issues_alu_instructions_one_per_cycle() {
        let mut core = core_with_program(|b| {
            b.op_n(
                10,
                WarpOp::Alu {
                    rf_reads: 2,
                    rf_writes: 1,
                },
            );
        });
        let mut port = FakePort::default();
        let cycles = run(&mut core, &mut port, 1000);
        assert_eq!(core.stats().instrs_issued, 10);
        assert!(
            cycles >= 10,
            "single-issue core needs >= 10 cycles, took {cycles}"
        );
        assert_eq!(core.stats().alu_lane_ops, 10 * 8);
        assert_eq!(core.stats().rf_reads, 10 * 2 * 8);
        assert_eq!(core.stats().rf_writes, 10 * 8);
    }

    #[test]
    fn wait_loads_blocks_until_memory_returns() {
        let access = LaneAccess::contiguous_words(AddrExpr::fixed(0), 8);
        let mut core = core_with_program(|b| {
            b.op(WarpOp::LoadShared { access });
            b.op(WarpOp::WaitLoads);
            b.op(WarpOp::Alu {
                rf_reads: 1,
                rf_writes: 1,
            });
        });
        let mut port = FakePort {
            mem_latency: 50,
            ..Default::default()
        };
        let cycles = run(&mut core, &mut port, 1000);
        assert!(
            cycles >= 50,
            "ALU must wait for the 50-cycle load, took {cycles}"
        );
        assert_eq!(port.shared_calls, 1);
        assert_eq!(core.stats().instrs_issued, 2);
    }

    #[test]
    fn multiple_warps_hide_memory_latency() {
        let access = LaneAccess::contiguous_words(AddrExpr::fixed(0), 8);
        let program = {
            let mut b = ProgramBuilder::new();
            b.repeat(4, |b| {
                b.op(WarpOp::LoadShared { access });
                b.op(WarpOp::WaitLoads);
                b.op(WarpOp::Alu {
                    rf_reads: 1,
                    rf_writes: 1,
                });
            });
            Arc::new(b.build())
        };
        let run_with_warps = |count: u32| -> u64 {
            let mut core = SimtCore::new(CoreConfig::vortex_default(), 0);
            for w in 0..count {
                core.assign_warp(w, &program);
            }
            let mut port = FakePort {
                mem_latency: 20,
                ..Default::default()
            };
            let mut cycle = 0;
            while !core.all_finished() && cycle < 10_000 {
                core.tick(Cycle::new(cycle), &mut port);
                cycle += 1;
            }
            cycle
        };
        let one = run_with_warps(1);
        let four = run_with_warps(4);
        // Four warps do 4x the work in much less than 4x the time.
        assert!(four < one * 3, "one warp: {one}, four warps: {four}");
    }

    #[test]
    fn hmma_structural_hazard_stalls_warp() {
        let mut core = core_with_program(|b| {
            b.op(WarpOp::HmmaStep {
                macs: 64,
                rf_reads: 4,
                rf_writes: 2,
            });
        });
        let mut port = FakePort {
            hmma_busy: true,
            ..Default::default()
        };
        for cycle in 0..10 {
            core.tick(Cycle::new(cycle), &mut port);
        }
        assert_eq!(core.stats().hmma_steps, 0);
        assert!(!core.all_finished());
        // Unit frees up: the step issues.
        port.hmma_busy = false;
        for cycle in 10..20 {
            core.tick(Cycle::new(cycle), &mut port);
        }
        assert_eq!(core.stats().hmma_steps, 1);
        assert!(core.all_finished());
    }

    #[test]
    fn hmma_hazard_refines_event_horizon_to_busy_until() {
        let mut core = core_with_program(|b| {
            b.op(WarpOp::HmmaStep {
                macs: 64,
                rf_reads: 4,
                rf_writes: 2,
            });
        });
        let port = FakePort {
            hmma_busy: true,
            hmma_free_at: Some(Cycle::new(17)),
            ..Default::default()
        };
        // The only runnable warp is retrying against a busy unit: the core's
        // horizon jumps to the unit's release cycle instead of pinning to now.
        assert_eq!(
            core.next_activity(Cycle::new(3), &port),
            Some(Cycle::new(17))
        );
        // Without release information the core stays conservatively pinned.
        let pinned = FakePort {
            hmma_busy: true,
            ..Default::default()
        };
        assert_eq!(
            core.next_activity(Cycle::new(3), &pinned),
            Some(Cycle::new(3))
        );
    }

    #[test]
    fn hmma_hazard_refinement_requires_every_runnable_warp_blocked() {
        let program_hmma = {
            let mut b = ProgramBuilder::new();
            b.op(WarpOp::HmmaStep {
                macs: 64,
                rf_reads: 4,
                rf_writes: 2,
            });
            Arc::new(b.build())
        };
        let program_alu = {
            let mut b = ProgramBuilder::new();
            b.op(WarpOp::Alu {
                rf_reads: 1,
                rf_writes: 1,
            });
            Arc::new(b.build())
        };
        let mut core = SimtCore::new(CoreConfig::vortex_default(), 0);
        core.assign_warp(0, &program_hmma);
        core.assign_warp(1, &program_alu);
        let port = FakePort {
            hmma_busy: true,
            hmma_free_at: Some(Cycle::new(50)),
            ..Default::default()
        };
        // The ALU warp can issue right now, so the horizon stays at now.
        assert_eq!(
            core.next_activity(Cycle::new(0), &port),
            Some(Cycle::new(0))
        );
    }

    #[test]
    fn warp_snapshots_expose_block_state() {
        let mut core = core_with_program(|b| {
            b.op(WarpOp::FenceAsync { max_outstanding: 0 });
            b.op(WarpOp::Nop);
        });
        let mut port = FakePort {
            async_outstanding: 2,
            ..Default::default()
        };
        core.tick(Cycle::new(0), &mut port);
        let snaps = core.warp_snapshots();
        assert_eq!(snaps.len(), 1);
        assert!(!snaps[0].finished);
        assert_eq!(
            snaps[0].block,
            Some(BlockReason::Fence { max_outstanding: 0 })
        );
    }

    #[test]
    fn barrier_blocks_until_released() {
        let mut core = core_with_program(|b| {
            b.op(WarpOp::Barrier { id: 0 });
            b.op(WarpOp::Nop);
        });
        let mut port = FakePort::default();
        for cycle in 0..5 {
            core.tick(Cycle::new(cycle), &mut port);
        }
        assert!(!core.all_finished());
        assert_eq!(port.barrier_arrivals, 1);
        port.barrier_open = true;
        for cycle in 5..10 {
            core.tick(Cycle::new(cycle), &mut port);
        }
        assert!(core.all_finished());
        assert_eq!(core.stats().barrier_arrivals, 1);
    }

    #[test]
    fn fence_blocks_and_polls_until_async_done() {
        let mut core = core_with_program(|b| {
            b.op(WarpOp::FenceAsync { max_outstanding: 0 });
            b.op(WarpOp::Nop);
        });
        let mut port = FakePort {
            async_outstanding: 2,
            ..Default::default()
        };
        for cycle in 0..100 {
            core.tick(Cycle::new(cycle), &mut port);
        }
        assert!(!core.all_finished());
        assert!(core.stats().fence_poll_instrs > 0);
        assert!(core.stats().fence_wait_cycles > 50);
        port.async_outstanding = 0;
        for cycle in 100..110 {
            core.tick(Cycle::new(cycle), &mut port);
        }
        assert!(core.all_finished());
    }

    #[test]
    fn wgmma_wait_blocks_until_unit_drains() {
        let op = WgmmaOp {
            a: AddrExpr::fixed(0),
            b: AddrExpr::fixed(0x800),
            m: 16,
            n: 16,
            k: 32,
            dtype: virgo_isa::DataType::Fp16,
        };
        let mut core = core_with_program(|b| {
            b.op(WarpOp::WgmmaInit(op));
            b.op(WarpOp::WgmmaWait);
        });
        let mut port = FakePort {
            wgmma_pending: 1,
            ..Default::default()
        };
        for cycle in 0..10 {
            core.tick(Cycle::new(cycle), &mut port);
        }
        assert_eq!(core.stats().wgmma_ops, 1);
        assert!(!core.all_finished());
        port.wgmma_pending = 0;
        for cycle in 10..20 {
            core.tick(Cycle::new(cycle), &mut port);
        }
        assert!(core.all_finished());
    }

    #[test]
    fn mmio_write_issues_through_port() {
        let cmd = MmioCommand::DmaCopy(virgo_isa::DmaCopyCmd::new(
            virgo_isa::MemLoc::global(0u64),
            virgo_isa::MemLoc::shared(0u64),
            1024,
        ));
        let mut core = core_with_program(|b| {
            b.op(WarpOp::MmioWrite {
                device: DeviceId::DMA0,
                cmd,
            });
        });
        let mut port = FakePort::default();
        run(&mut core, &mut port, 100);
        assert_eq!(port.mmio_calls, 1);
        assert_eq!(core.stats().mmio_writes, 1);
    }

    #[test]
    fn idle_and_active_cycle_accounting() {
        let mut core = core_with_program(|b| {
            b.op(WarpOp::Nop);
        });
        let mut port = FakePort::default();
        core.tick(Cycle::new(0), &mut port); // issues the nop
        core.tick(Cycle::new(1), &mut port); // nothing left: idle
        let s = core.stats();
        assert_eq!(s.active_cycles, 1);
        assert_eq!(s.idle_cycles, 1);
        assert_eq!(s.total_cycles, 2);
    }

    #[test]
    #[should_panic(expected = "already has")]
    fn over_assigning_warps_panics() {
        let program = Arc::new(ProgramBuilder::new().build());
        let mut core = SimtCore::new(CoreConfig::vortex_default(), 0);
        for w in 0..9 {
            core.assign_warp(w, &program);
        }
    }
}
