//! The SIMT core model for the Virgo GPU simulator.
//!
//! This crate models the Vortex-derived SIMT core of the paper (Section 5.2):
//! a multi-warp, in-order core with a warp scheduler, a banked register file,
//! two integer ALUs and one FPU per lane, a load/store unit behind a memory
//! coalescer, and hooks for the matrix units of the different design points.
//!
//! The core is deliberately decoupled from the rest of the cluster through
//! the [`ClusterPort`] trait: shared-memory accesses, global-memory accesses,
//! tensor-core operations, MMIO commands to the disaggregated matrix unit and
//! the DMA engine, and cluster-wide barriers are all services the cluster
//! provides. This mirrors the physical structure of the paper's design —
//! and keeps the core reusable across the Volta/Ampere/Hopper/Virgo design
//! points, which differ only in which services exist behind the port.
//!
//! The crate also provides the [`ClusterSynchronizer`] (Section 3.3), the
//! lightweight barrier unit that lets warps across different cores of the
//! cluster synchronize.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod core;
pub mod port;
pub mod stats;
pub mod synchronizer;
pub mod warp;

pub use config::CoreConfig;
pub use core::{SimtCore, TickOutcome, WarpSnapshot};
pub use port::ClusterPort;
pub use stats::CoreStats;
pub use synchronizer::ClusterSynchronizer;
pub use warp::{BlockReason, WarpContext};
