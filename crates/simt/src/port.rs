//! The [`ClusterPort`] trait: services the cluster provides to its cores.

use virgo_isa::{DeviceId, MmioCommand, WgmmaOp};
use virgo_sim::Cycle;

/// Services a SIMT core obtains from the cluster it lives in.
///
/// The cluster model (in the `virgo` crate) implements this trait, routing
/// the calls to the shared memory, the global memory hierarchy, the
/// per-core tensor units, the disaggregated matrix unit, the DMA engine, the
/// asynchronous-operation tracker behind `virgo_fence`, and the cluster
/// synchronizer.
///
/// Every method takes the current cycle so the callee can model occupancy.
pub trait ClusterPort {
    /// Serves one warp shared-memory access (4 bytes per lane); returns the
    /// completion cycle.
    fn shared_access(&mut self, now: Cycle, core: u32, lane_addrs: &[u64], write: bool) -> Cycle;

    /// Serves one warp global-memory access; returns the completion cycle.
    fn global_access(
        &mut self,
        now: Cycle,
        core: u32,
        lane_addrs: &[u64],
        bytes_per_lane: u32,
        write: bool,
    ) -> Cycle;

    /// Attempts to start one Volta-style HMMA step of `macs`
    /// multiply-accumulates on `core`'s tightly-coupled tensor unit.
    /// Returns `false` when the unit is still busy (structural hazard — the
    /// warp retries next cycle).
    fn try_hmma(&mut self, now: Cycle, core: u32, macs: u32) -> bool;

    /// The cycle at which `core`'s tightly-coupled tensor unit finishes its
    /// current step and can accept the next one, or `None` when the unit is
    /// already free. A design with no such unit also returns `None`: its
    /// `try_hmma` fails every cycle, so a stray `HmmaStep` keeps the core
    /// conservatively pinned to `now` (and eventually surfaces as an
    /// issue-stall in the timeout diagnosis).
    ///
    /// This powers the fast-forward engine's structural-hazard refinement:
    /// when every runnable warp of a core is retrying an HMMA step against a
    /// busy unit, the core's event horizon can jump to this cycle instead of
    /// pinning to `now`. The default is the conservative `None`, which keeps
    /// hazard-blocked cores cycle-stepped.
    fn hmma_busy_until(&self, _now: Cycle, _core: u32) -> Option<Cycle> {
        None
    }

    /// Attempts to enqueue a Hopper-style asynchronous `wgmma` operation on
    /// `core`'s operand-decoupled tensor unit. `exec_count` is the issuing
    /// instruction's execution count, used to evaluate tile addresses.
    /// Returns `false` when the unit's queue is full.
    fn try_wgmma(&mut self, now: Cycle, core: u32, op: &WgmmaOp, exec_count: u64) -> bool;

    /// Number of `wgmma` operations still outstanding on `core`'s unit.
    fn wgmma_pending(&self, core: u32) -> u32;

    /// Writes an MMIO command to a cluster device (matrix unit or DMA).
    /// Returns `false` when the device cannot accept the command this cycle.
    fn mmio_write(
        &mut self,
        now: Cycle,
        core: u32,
        device: DeviceId,
        cmd: &MmioCommand,
        exec_count: u64,
    ) -> bool;

    /// Number of asynchronous cluster operations (DMA transfers and
    /// disaggregated matrix operations) issued by the thread block that have
    /// not yet completed. `virgo_fence(n)` blocks while this exceeds `n`.
    fn async_outstanding(&self) -> u32;

    /// Registers that a warp arrived at cluster barrier `id`; returns the
    /// barrier generation ("ticket") the warp waits on.
    fn barrier_arrive(&mut self, id: u8, warp_global_id: u32) -> u64;

    /// True once barrier `id` has released generation `ticket`.
    fn barrier_passed(&self, id: u8, ticket: u64) -> bool;
}
