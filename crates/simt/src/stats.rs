//! Per-core event counters.

/// Event counters kept by one SIMT core, later converted into energy by the
//  SoC model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions issued (retired) by the core.
    pub instrs_issued: u64,
    /// 32-bit register file reads, summed over lanes.
    pub rf_reads: u64,
    /// 32-bit register file writes, summed over lanes.
    pub rf_writes: u64,
    /// Integer ALU lane-operations executed.
    pub alu_lane_ops: u64,
    /// Floating-point lane-operations executed.
    pub fpu_lane_ops: u64,
    /// Memory lane-operations handled by the LSU.
    pub lsu_lane_ops: u64,
    /// Instruction writebacks.
    pub writebacks: u64,
    /// L1 instruction-cache accesses (one per fetched line of instructions).
    pub icache_accesses: u64,
    /// HMMA steps issued to the tightly-coupled tensor unit.
    pub hmma_steps: u64,
    /// `wgmma` operations initiated on the operand-decoupled tensor unit.
    pub wgmma_ops: u64,
    /// MMIO commands written to cluster devices.
    pub mmio_writes: u64,
    /// Busy-register poll loads issued while waiting in `virgo_fence`.
    pub fence_poll_instrs: u64,
    /// Cycles spent with at least one warp blocked on `virgo_fence`.
    pub fence_wait_cycles: u64,
    /// Barrier arrivals.
    pub barrier_arrivals: u64,
    /// Cycles in which the core issued at least one instruction.
    pub active_cycles: u64,
    /// Cycles in which the core had runnable work but issued nothing
    /// (structural or memory stalls).
    pub stall_cycles: u64,
    /// Cycles in which every warp was finished or blocked.
    pub idle_cycles: u64,
    /// Total cycles the core was ticked.
    pub total_cycles: u64,
}

impl CoreStats {
    /// Fraction of cycles in which the core issued at least one instruction.
    pub fn issue_utilization(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.active_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Adds the counts of `other` into `self` (used to aggregate cores).
    pub fn merge(&mut self, other: &CoreStats) {
        self.instrs_issued += other.instrs_issued;
        self.rf_reads += other.rf_reads;
        self.rf_writes += other.rf_writes;
        self.alu_lane_ops += other.alu_lane_ops;
        self.fpu_lane_ops += other.fpu_lane_ops;
        self.lsu_lane_ops += other.lsu_lane_ops;
        self.writebacks += other.writebacks;
        self.icache_accesses += other.icache_accesses;
        self.hmma_steps += other.hmma_steps;
        self.wgmma_ops += other.wgmma_ops;
        self.mmio_writes += other.mmio_writes;
        self.fence_poll_instrs += other.fence_poll_instrs;
        self.fence_wait_cycles += other.fence_wait_cycles;
        self.barrier_arrivals += other.barrier_arrivals;
        self.active_cycles += other.active_cycles;
        self.stall_cycles += other.stall_cycles;
        self.idle_cycles += other.idle_cycles;
        self.total_cycles += other.total_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = CoreStats {
            instrs_issued: 10,
            rf_reads: 20,
            active_cycles: 5,
            total_cycles: 10,
            ..Default::default()
        };
        let b = CoreStats {
            instrs_issued: 1,
            rf_reads: 2,
            active_cycles: 1,
            total_cycles: 10,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.instrs_issued, 11);
        assert_eq!(a.rf_reads, 22);
        assert_eq!(a.total_cycles, 20);
    }

    #[test]
    fn issue_utilization_handles_zero_cycles() {
        let s = CoreStats::default();
        assert_eq!(s.issue_utilization(), 0.0);
        let s2 = CoreStats {
            active_cycles: 5,
            total_cycles: 10,
            ..Default::default()
        };
        assert!((s2.issue_utilization() - 0.5).abs() < 1e-12);
    }
}
