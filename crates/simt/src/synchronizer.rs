//! The cluster-wide synchronizer (Section 3.3).
//!
//! The synchronizer interfaces with the warp scheduler of every core in the
//! cluster. When the designated warps reach a barrier instruction, each warp
//! sends an arrival to the synchronizer; once every participant of that
//! barrier has arrived, the barrier "generation" advances and all waiting
//! warps are released. Multiple independent barriers (distinguished by id)
//! can be in flight, and each barrier can be reused across loop iterations —
//! hence the generation counter.

use std::collections::BTreeMap;

/// State of one barrier id.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct BarrierState {
    /// Completed generations of this barrier.
    generation: u64,
    /// Arrivals seen in the current generation.
    arrived: u64,
}

/// The cluster-wide barrier synchronizer.
///
/// # Example
///
/// ```
/// use virgo_simt::ClusterSynchronizer;
///
/// let mut sync = ClusterSynchronizer::new(2);
/// let t0 = sync.arrive(0, 0);
/// assert!(!sync.passed(0, t0));
/// let t1 = sync.arrive(0, 1);
/// assert!(sync.passed(0, t0));
/// assert!(sync.passed(0, t1));
/// ```
#[derive(Debug, Clone)]
pub struct ClusterSynchronizer {
    /// Number of warps that must arrive to release a barrier.
    participants: u64,
    barriers: BTreeMap<u8, BarrierState>,
    /// Total arrival events (for energy accounting).
    arrivals: u64,
    /// Total releases.
    releases: u64,
}

impl ClusterSynchronizer {
    /// Creates a synchronizer expecting `participants` warps per barrier.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is zero.
    pub fn new(participants: u64) -> Self {
        assert!(participants > 0, "a barrier needs at least one participant");
        ClusterSynchronizer {
            participants,
            barriers: BTreeMap::new(),
            arrivals: 0,
            releases: 0,
        }
    }

    /// Number of participants required to release each barrier.
    pub fn participants(&self) -> u64 {
        self.participants
    }

    /// Registers the arrival of a warp at barrier `id`. Returns the
    /// generation "ticket" the warp should wait on via
    /// [`ClusterSynchronizer::passed`].
    pub fn arrive(&mut self, id: u8, _warp_global_id: u32) -> u64 {
        self.arrivals += 1;
        let state = self.barriers.entry(id).or_default();
        let ticket = state.generation;
        state.arrived += 1;
        if state.arrived >= self.participants {
            state.arrived = 0;
            state.generation += 1;
            self.releases += 1;
        }
        ticket
    }

    /// True once the generation `ticket` of barrier `id` has been released.
    pub fn passed(&self, id: u8, ticket: u64) -> bool {
        self.barriers
            .get(&id)
            .is_some_and(|state| state.generation > ticket)
    }

    /// Total arrival events observed (for energy accounting).
    pub fn arrival_events(&self) -> u64 {
        self.arrivals
    }

    /// Total barrier releases performed.
    pub fn release_events(&self) -> u64 {
        self.releases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_releases_when_all_arrive() {
        let mut s = ClusterSynchronizer::new(3);
        let t0 = s.arrive(1, 0);
        let t1 = s.arrive(1, 1);
        assert!(!s.passed(1, t0));
        assert!(!s.passed(1, t1));
        let t2 = s.arrive(1, 2);
        assert!(s.passed(1, t0) && s.passed(1, t1) && s.passed(1, t2));
        assert_eq!(s.release_events(), 1);
        assert_eq!(s.arrival_events(), 3);
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let mut s = ClusterSynchronizer::new(2);
        let a0 = s.arrive(0, 0);
        let a1 = s.arrive(0, 1);
        assert!(s.passed(0, a0) && s.passed(0, a1));
        // Second use of the same barrier id.
        let b0 = s.arrive(0, 0);
        assert!(!s.passed(0, b0));
        let b1 = s.arrive(0, 1);
        assert!(s.passed(0, b0) && s.passed(0, b1));
        assert_eq!(s.release_events(), 2);
    }

    #[test]
    fn independent_barrier_ids_do_not_interfere() {
        let mut s = ClusterSynchronizer::new(2);
        let t_a = s.arrive(0, 0);
        let t_b = s.arrive(1, 1);
        assert!(!s.passed(0, t_a));
        assert!(!s.passed(1, t_b));
        s.arrive(0, 1);
        assert!(s.passed(0, t_a));
        assert!(!s.passed(1, t_b));
    }

    #[test]
    fn single_participant_barrier_releases_immediately() {
        let mut s = ClusterSynchronizer::new(1);
        let t = s.arrive(0, 0);
        assert!(s.passed(0, t));
    }

    #[test]
    #[should_panic(expected = "participant")]
    fn zero_participants_rejected() {
        let _ = ClusterSynchronizer::new(0);
    }

    #[test]
    fn unknown_barrier_never_passes() {
        let s = ClusterSynchronizer::new(2);
        assert!(!s.passed(9, 0));
    }
}
