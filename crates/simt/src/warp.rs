//! Per-warp execution state.

use std::sync::Arc;

use virgo_isa::{OpId, Program, ProgramCursor, WarpOp};
use virgo_sim::Cycle;

/// Why a warp is currently unable to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Waiting for all outstanding loads to write back (`WaitLoads`).
    Loads,
    /// Waiting at a cluster barrier for the given generation ticket.
    Barrier {
        /// Barrier id.
        id: u8,
        /// Generation ticket returned by the synchronizer.
        ticket: u64,
    },
    /// Waiting for the core's operand-decoupled tensor unit to drain.
    WgmmaDrain,
    /// Spinning in `virgo_fence(max_outstanding)`.
    Fence {
        /// Maximum number of asynchronous operations allowed to remain.
        max_outstanding: u32,
    },
}

/// The dynamic state of one hardware warp.
#[derive(Debug, Clone)]
pub struct WarpContext {
    /// Cluster-unique warp id (used for barrier arrival bookkeeping).
    pub global_id: u32,
    cursor: ProgramCursor,
    /// Per-static-instruction execution counts, indexed by [`OpId`].
    exec_counts: Vec<u64>,
    /// The next operation to issue, if already fetched from the cursor.
    pending: Option<(OpId, WarpOp)>,
    /// Completion cycles of outstanding loads.
    outstanding_loads: Vec<Cycle>,
    /// Why the warp is blocked, if it is.
    block: Option<BlockReason>,
    /// Cycle at which the warp last emitted a fence poll.
    last_fence_poll: Cycle,
}

impl WarpContext {
    /// Creates a warp positioned at the start of `program`.
    pub fn new(global_id: u32, program: &Arc<Program>) -> Self {
        WarpContext {
            global_id,
            cursor: program.cursor(),
            exec_counts: vec![0; program.static_len() as usize],
            pending: None,
            outstanding_loads: Vec::new(),
            block: None,
            last_fence_poll: Cycle::ZERO,
        }
    }

    /// Returns the next operation to issue without consuming it, fetching
    /// from the program cursor if necessary.
    pub fn peek(&mut self) -> Option<(OpId, WarpOp)> {
        if self.pending.is_none() {
            self.pending = self.cursor.next_op();
        }
        self.pending
    }

    /// Consumes the pending operation (after it has issued or been resolved)
    /// and increments its execution counter.
    ///
    /// # Panics
    ///
    /// Panics if there is no pending operation.
    pub fn consume(&mut self) -> (OpId, WarpOp) {
        let (id, op) = self.pending.take().expect("consume without pending op");
        self.exec_counts[id.index()] += 1;
        // Eagerly prefetch the next operation so that `is_finished` reflects
        // the program end as soon as the last instruction retires.
        self.pending = self.cursor.next_op();
        (id, op)
    }

    /// Execution count of the pending operation (how many times it has
    /// already executed), used to evaluate address expressions.
    pub fn exec_count(&self, id: OpId) -> u64 {
        self.exec_counts[id.index()]
    }

    /// Registers an outstanding load completing at `done`.
    pub fn push_load(&mut self, done: Cycle) {
        self.outstanding_loads.push(done);
    }

    /// Retires loads whose completion cycle has passed; returns how many.
    pub fn retire_loads(&mut self, now: Cycle) -> usize {
        let before = self.outstanding_loads.len();
        self.outstanding_loads.retain(|&done| done > now);
        before - self.outstanding_loads.len()
    }

    /// Number of loads still in flight.
    pub fn loads_in_flight(&self) -> usize {
        self.outstanding_loads.len()
    }

    /// Completion cycle of the earliest outstanding load, if any — the next
    /// cycle at which [`WarpContext::retire_loads`] can retire something.
    pub fn earliest_load_done(&self) -> Option<Cycle> {
        self.outstanding_loads.iter().copied().min()
    }

    /// Marks the warp blocked for `reason`.
    pub fn block(&mut self, reason: BlockReason) {
        self.block = Some(reason);
    }

    /// Clears the blocked state.
    pub fn unblock(&mut self) {
        self.block = None;
    }

    /// The current block reason, if any.
    pub fn block_reason(&self) -> Option<BlockReason> {
        self.block
    }

    /// True when the warp can attempt to issue this cycle.
    pub fn is_runnable(&self) -> bool {
        self.block.is_none() && !self.is_finished()
    }

    /// True when the warp has executed its whole program, drained its
    /// outstanding loads and is not waiting on any synchronization event.
    pub fn is_finished(&self) -> bool {
        self.block.is_none()
            && self.pending.is_none()
            && self.cursor.is_done()
            && self.outstanding_loads.is_empty()
    }

    /// Re-anchors the fence-poll rate limiter at `at`, the warp's first
    /// live cycle. A freshly built warp anchors at cycle zero, which is
    /// correct for a run starting at zero but charges the first poll of a
    /// warp born mid-session (a job admitted at cycle `T > 0`) one interval
    /// early relative to its own start. Anchoring at birth makes the poll
    /// cadence a pure function of warp-relative time — and is a no-op for
    /// `at == 0`, so standalone runs are bit-identical.
    pub fn anchor_fence_polls(&mut self, at: Cycle) {
        self.last_fence_poll = self.last_fence_poll.max(at);
    }

    /// Records a fence poll at `now`; returns true when a new poll should be
    /// charged (at most one per `interval` cycles).
    pub fn fence_poll_due(&mut self, now: Cycle, interval: u32) -> bool {
        if now.saturating_sub(self.last_fence_poll).get() >= u64::from(interval.max(1)) {
            self.last_fence_poll = now;
            true
        } else {
            false
        }
    }

    /// Replays, in closed form, the fence polls that [`WarpContext::fence_poll_due`]
    /// would have recorded over the window of `cycles` ticks starting at
    /// `from` (during which the warp is known to stay fence-blocked), and
    /// returns how many polls were charged.
    ///
    /// Used by the fast-forward engine: the naive loop calls `fence_poll_due`
    /// once per tick at `from, from + 1, ..., from + cycles - 1`; this method
    /// produces the identical poll count and leaves the poll timestamp
    /// exactly where the per-tick sequence would have left it.
    pub fn fast_forward_fence_polls(&mut self, from: Cycle, cycles: u64, interval: u32) -> u64 {
        let step = u64::from(interval.max(1));
        let first = (self.last_fence_poll.get() + step).max(from.get());
        let end = from.get() + cycles; // exclusive
        if first >= end {
            return 0;
        }
        let count = (end - 1 - first) / step + 1;
        self.last_fence_poll = Cycle::new(first + (count - 1) * step);
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virgo_isa::ProgramBuilder;

    fn warp_with(ops: u32) -> WarpContext {
        let mut b = ProgramBuilder::new();
        b.op_n(ops, WarpOp::Nop);
        WarpContext::new(0, &Arc::new(b.build()))
    }

    #[test]
    fn peek_then_consume_walks_program() {
        let mut w = warp_with(2);
        assert!(w.peek().is_some());
        w.consume();
        assert!(w.peek().is_some());
        w.consume();
        assert!(w.peek().is_none());
        assert!(w.is_finished());
    }

    #[test]
    fn exec_counts_increment_per_consume() {
        let mut b = ProgramBuilder::new();
        b.repeat(3, |b| {
            b.op(WarpOp::Nop);
        });
        let mut w = WarpContext::new(0, &Arc::new(b.build()));
        for expected in 0..3 {
            let (id, _) = w.peek().unwrap();
            assert_eq!(w.exec_count(id), expected);
            w.consume();
        }
        assert!(w.is_finished());
    }

    #[test]
    fn loads_block_completion_until_retired() {
        let mut w = warp_with(1);
        w.peek();
        w.consume();
        w.push_load(Cycle::new(10));
        assert!(!w.is_finished());
        assert_eq!(w.retire_loads(Cycle::new(5)), 0);
        assert_eq!(w.loads_in_flight(), 1);
        assert_eq!(w.retire_loads(Cycle::new(10)), 1);
        assert!(w.is_finished());
    }

    #[test]
    fn block_and_unblock_toggle_runnability() {
        let mut w = warp_with(1);
        assert!(w.is_runnable());
        w.block(BlockReason::Loads);
        assert!(!w.is_runnable());
        assert_eq!(w.block_reason(), Some(BlockReason::Loads));
        w.unblock();
        assert!(w.is_runnable());
    }

    #[test]
    fn finished_warp_is_not_runnable() {
        let w = warp_with(0);
        assert!(w.is_finished());
        assert!(!w.is_runnable());
    }

    #[test]
    fn fence_poll_rate_limited() {
        let mut w = warp_with(1);
        assert!(w.fence_poll_due(Cycle::new(8), 8));
        assert!(!w.fence_poll_due(Cycle::new(12), 8));
        assert!(w.fence_poll_due(Cycle::new(16), 8));
    }

    #[test]
    #[should_panic(expected = "consume without pending")]
    fn consume_without_peek_panics() {
        let mut w = warp_with(1);
        let _ = w.consume();
    }
}
