//! The `virgo-store` server binary.
//!
//! ```text
//! virgo-store [--addr HOST:PORT] [--dir PATH] [--quarantine PATH]
//! ```
//!
//! Serves a content-addressed report store (GET/PUT/STAT over TCP) from a
//! directory of validated snapshot envelopes. Defaults: `127.0.0.1:7171`,
//! `target/report-store/`, `<dir>/quarantine/`.

use std::process::ExitCode;

use virgo_store::{EntryDir, StoreServer};

const USAGE: &str = "usage: virgo-store [--addr HOST:PORT] [--dir PATH] [--quarantine PATH]";

struct Args {
    addr: String,
    dir: String,
    quarantine: Option<String>,
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    let _ = argv.next(); // program name
    let mut args = Args {
        addr: "127.0.0.1:7171".to_string(),
        dir: "target/report-store".to_string(),
        quarantine: None,
    };
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or(format!("{flag} needs a value\n{USAGE}"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--dir" => args.dir = value("--dir")?,
            "--quarantine" => args.quarantine = Some(value("--quarantine")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let mut entries = EntryDir::new(&args.dir);
    if let Some(quarantine) = &args.quarantine {
        entries = entries.with_quarantine(quarantine);
    }
    let server = match StoreServer::bind(&args.addr, entries) {
        Ok(server) => server.verbose(true),
        Err(e) => {
            eprintln!("virgo-store: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => eprintln!("virgo-store: serving {} on {addr}", args.dir),
        Err(e) => {
            eprintln!("virgo-store: cannot read bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    server.run();
    ExitCode::SUCCESS
}
