//! The store client: one blocking TCP connection with connect/IO timeouts.
//!
//! The client is deliberately dumb — it speaks exactly one frame per call
//! and reports every failure as an [`std::io::Error`]. Retry, reconnection
//! and degrade-to-local policy live in the sweep layer's `RemoteStore`,
//! which owns the "a dead store must never fail a sweep" contract; keeping
//! the transport free of policy makes that policy testable.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    key_field, read_response, write_request, Opcode, Response, Status, MAX_PAYLOAD,
};

/// Connection and per-request timeouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Budget for establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Budget for each read/write within a request.
    pub io_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            // A store on the local network answers in well under these; a
            // dead one must not stall a sweep for longer than this per try.
            connect_timeout: Duration::from_millis(250),
            io_timeout: Duration::from_secs(2),
        }
    }
}

/// A connected store client.
#[derive(Debug)]
pub struct StoreClient {
    stream: TcpStream,
    addr: SocketAddr,
    config: ClientConfig,
}

impl StoreClient {
    /// Connects to the store at `addr` with default timeouts.
    ///
    /// # Errors
    ///
    /// Propagates resolution, connection and timeout-setup failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<StoreClient> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit timeouts.
    ///
    /// # Errors
    ///
    /// Propagates resolution, connection and timeout-setup failures.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<StoreClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let stream = TcpStream::connect_timeout(&addr, config.connect_timeout)?;
        stream.set_read_timeout(Some(config.io_timeout))?;
        stream.set_write_timeout(Some(config.io_timeout))?;
        stream.set_nodelay(true)?;
        Ok(StoreClient {
            stream,
            addr,
            config,
        })
    }

    /// The address this client is connected to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The timeouts this client was configured with.
    pub fn config(&self) -> ClientConfig {
        self.config
    }

    /// Fetches the envelope stored under `key_hex`. `Ok(None)` is a clean
    /// miss; an `ERR` response or any transport/protocol failure is an
    /// error (the caller decides whether to retry or degrade).
    ///
    /// # Errors
    ///
    /// Transport failures, malformed frames, or an `ERR` response.
    pub fn get(&mut self, key_hex: &str) -> io::Result<Option<String>> {
        let response = self.roundtrip(Opcode::Get, key_hex, &[])?;
        match response.status {
            Status::Hit => String::from_utf8(response.payload)
                .map(Some)
                .map_err(|_| bad_reply("HIT payload is not UTF-8")),
            Status::Miss => Ok(None),
            Status::Err => Err(refused(&response)),
            other => Err(bad_reply(&format!("unexpected {other:?} to GET"))),
        }
    }

    /// Publishes `envelope` under `key_hex`. `Ok(true)` means stored,
    /// `Ok(false)` means the server refused it (e.g. failed validation) —
    /// the connection remains usable either way.
    ///
    /// # Errors
    ///
    /// Transport failures or malformed frames.
    pub fn put(&mut self, key_hex: &str, envelope: &str) -> io::Result<bool> {
        if envelope.len() as u64 > u64::from(MAX_PAYLOAD) {
            return Ok(false); // oversized entries are refused locally
        }
        let response = self.roundtrip(Opcode::Put, key_hex, envelope.as_bytes())?;
        match response.status {
            Status::Ok => Ok(true),
            Status::Err => Ok(false),
            other => Err(bad_reply(&format!("unexpected {other:?} to PUT"))),
        }
    }

    /// Fetches the server's counters as a JSON string.
    ///
    /// # Errors
    ///
    /// Transport failures, malformed frames, or an `ERR` response.
    pub fn stat(&mut self) -> io::Result<String> {
        let zero_key = "0".repeat(crate::protocol::KEY_LEN);
        let response = self.roundtrip(Opcode::Stat, &zero_key, &[])?;
        match response.status {
            Status::Stats => String::from_utf8(response.payload)
                .map_err(|_| bad_reply("STATS payload is not UTF-8")),
            Status::Err => Err(refused(&response)),
            other => Err(bad_reply(&format!("unexpected {other:?} to STAT"))),
        }
    }

    fn roundtrip(&mut self, opcode: Opcode, key_hex: &str, payload: &[u8]) -> io::Result<Response> {
        let key = key_field(key_hex);
        write_request(&mut self.stream, opcode, &key, payload)?;
        self.stream.flush()?;
        read_response(&mut self.stream)
    }
}

fn bad_reply(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("store client: {what}"))
}

fn refused(response: &Response) -> io::Error {
    io::Error::other(format!(
        "store refused request: {}",
        String::from_utf8_lossy(&response.payload)
    ))
}
