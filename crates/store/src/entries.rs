//! Content-addressed entry directory: the at-rest half of the store.
//!
//! An [`EntryDir`] holds one file per [`SimKey`](virgo::SimKey), named
//! `<hex>.json`, whose contents are the self-verifying snapshot envelope
//! produced by `SimReport::to_cache_json`. Every load re-validates the
//! envelope against the key it was requested under; an entry that fails
//! (corrupt, truncated, stale format, misfiled) is moved into a quarantine
//! directory — preserving the evidence for post-mortem — and reported as
//! absent. Every store validates *before* writing and writes through a
//! unique temp file + atomic rename, so a killed process (or two racing
//! writers of the same key) can never leave a truncated or interleaved
//! entry behind.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use virgo::SimReport;

/// Why a [`EntryDir::store`] was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The envelope failed validation against the key it was offered under.
    Invalid(String),
    /// The envelope was valid but could not be persisted (I/O failure).
    Io(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Invalid(why) => write!(f, "invalid entry: {why}"),
            StoreError::Io(why) => write!(f, "entry write failed: {why}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// The outcome of a [`EntryDir::load`].
///
/// `Valid` carries a full report and dwarfs the marker variants; every
/// `Loaded` is consumed immediately at the call site, so the size skew is
/// harmless and boxing would only add an allocation to the hot hit path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Loaded {
    /// The entry exists and its envelope validated against the key; carries
    /// the raw envelope text (forwardable verbatim) and the parsed report.
    Valid(String, SimReport),
    /// No entry under that key.
    Absent,
    /// An entry existed but failed validation; it has been quarantined (or
    /// deleted when the quarantine move itself failed).
    Quarantined {
        /// Whether the corrupt bytes were preserved in the quarantine
        /// directory (`false` means the move failed and the entry was
        /// deleted instead).
        preserved: bool,
    },
}

/// Monotonic suffix so concurrent writers — even two threads of one process
/// racing on the *same* key — each get a private temp file. The old
/// pid-only suffix let same-process racers interleave into one file and
/// rename garbage into place.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A directory of validated, content-addressed report entries.
#[derive(Debug, Clone)]
pub struct EntryDir {
    dir: PathBuf,
    quarantine: PathBuf,
}

impl EntryDir {
    /// Creates an entry directory rooted at `dir`, quarantining rejected
    /// entries under `dir/quarantine/`. Directories are created lazily on
    /// first write.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        let quarantine = dir.join("quarantine");
        EntryDir { dir, quarantine }
    }

    /// Overrides the quarantine directory (by default `<dir>/quarantine/`).
    pub fn with_quarantine(mut self, quarantine: impl Into<PathBuf>) -> Self {
        self.quarantine = quarantine.into();
        self
    }

    /// The root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The quarantine directory.
    pub fn quarantine_dir(&self) -> &Path {
        &self.quarantine
    }

    /// Path of the entry for `key_hex`.
    pub fn entry_path(&self, key_hex: &str) -> PathBuf {
        self.dir.join(format!("{key_hex}.json"))
    }

    /// Loads and validates the entry for `key_hex`.
    pub fn load(&self, key_hex: &str) -> Loaded {
        let path = self.entry_path(key_hex);
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Loaded::Absent;
        };
        match SimReport::from_cache_json(&text, key_hex) {
            Ok(report) => Loaded::Valid(text, report),
            Err(_) => Loaded::Quarantined {
                preserved: self.quarantine_entry(&path),
            },
        }
    }

    /// Validates `envelope` against `key_hex` and, when valid, persists it
    /// atomically. Returns the parsed report so callers can keep it without
    /// a second parse.
    ///
    /// # Errors
    ///
    /// [`StoreError::Invalid`] when the envelope fails validation (nothing
    /// is written), [`StoreError::Io`] when the write or rename fails.
    pub fn store(&self, key_hex: &str, envelope: &str) -> Result<SimReport, StoreError> {
        let report = SimReport::from_cache_json(envelope, key_hex)
            .map_err(|e| StoreError::Invalid(e.to_string()))?;
        self.store_unchecked(key_hex, envelope)?;
        Ok(report)
    }

    /// Persists an envelope the caller has already validated (e.g. one it
    /// just produced via `to_cache_json`). Same atomicity as [`store`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the write or rename fails.
    ///
    /// [`store`]: EntryDir::store
    pub fn store_unchecked(&self, key_hex: &str, envelope: &str) -> Result<(), StoreError> {
        let path = self.entry_path(key_hex);
        std::fs::create_dir_all(&self.dir).map_err(|e| StoreError::Io(e.to_string()))?;
        atomic_write(&path, envelope.as_bytes()).map_err(|e| StoreError::Io(e.to_string()))
    }

    /// Moves a rejected entry into the quarantine directory, preserving the
    /// corrupt bytes for post-mortem. Returns whether the move succeeded;
    /// deletion is the fallback, so a bad entry never keeps masquerading as
    /// a valid one either way.
    fn quarantine_entry(&self, path: &Path) -> bool {
        let moved = std::fs::create_dir_all(&self.quarantine).is_ok()
            && path
                .file_name()
                .is_some_and(|name| std::fs::rename(path, self.quarantine.join(name)).is_ok());
        if !moved {
            let _ = std::fs::remove_file(path);
        }
        moved
    }
}

/// Writes `bytes` to `path` through a uniquely named temp file in the same
/// directory plus an atomic rename: readers observe either the old entry or
/// the complete new one, never a truncation — regardless of process kills
/// or same-key write races.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("entry");
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = path.with_file_name(format!(".{name}.tmp-{}-{seq}", std::process::id()));
    let result = std::fs::write(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use virgo::{Gpu, GpuConfig, SimKey, SimMode};
    use virgo_isa::{DataType, Kernel, KernelInfo, ProgramBuilder, WarpAssignment, WarpOp};

    fn tiny_report(ops: u32) -> (String, String) {
        let mut b = ProgramBuilder::new();
        b.op_n(
            ops,
            WarpOp::Alu {
                rf_reads: 1,
                rf_writes: 1,
            },
        );
        let kernel = Kernel::new(
            KernelInfo::new("store-test", 0, DataType::Fp16),
            vec![WarpAssignment::new(0, 0, Arc::new(b.build()))],
        );
        let config = GpuConfig::virgo();
        let key = SimKey::digest(&config, &kernel, 100_000, SimMode::FastForward);
        let report = Gpu::new(config).run(&kernel, 100_000).unwrap();
        (key.to_hex(), report.to_cache_json(&key.to_hex()))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "virgo-store-{tag}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = temp_dir("roundtrip");
        let entries = EntryDir::new(&dir);
        let (key, envelope) = tiny_report(5);
        let stored = entries.store(&key, &envelope).unwrap();
        match entries.load(&key) {
            Loaded::Valid(text, report) => {
                assert_eq!(text, envelope, "envelope must be forwarded verbatim");
                assert_eq!(format!("{report:?}"), format!("{stored:?}"));
            }
            other => panic!("expected Valid, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn absent_key_loads_as_absent() {
        let dir = temp_dir("absent");
        let entries = EntryDir::new(&dir);
        assert!(matches!(entries.load(&"00".repeat(16)), Loaded::Absent));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_envelope_is_refused_and_not_written() {
        let dir = temp_dir("invalid");
        let entries = EntryDir::new(&dir);
        let (key, envelope) = tiny_report(2);
        let mut corrupt = envelope;
        corrupt.truncate(corrupt.len() / 2);
        assert!(matches!(
            entries.store(&key, &corrupt),
            Err(StoreError::Invalid(_))
        ));
        assert!(!entries.entry_path(&key).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_on_disk_is_quarantined_on_load() {
        let dir = temp_dir("quarantine");
        let entries = EntryDir::new(&dir);
        let (key, envelope) = tiny_report(3);
        entries.store(&key, &envelope).unwrap();
        let path = entries.entry_path(&key);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.truncate(text.len() / 2);
        std::fs::write(&path, text).unwrap();
        assert!(matches!(
            entries.load(&key),
            Loaded::Quarantined { preserved: true }
        ));
        assert!(!path.exists());
        assert!(entries
            .quarantine_dir()
            .join(format!("{key}.json"))
            .exists());
        // The slot is clean again.
        assert!(matches!(entries.load(&key), Loaded::Absent));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn misfiled_entry_is_quarantined() {
        let dir = temp_dir("misfiled");
        let entries = EntryDir::new(&dir);
        let (key, envelope) = tiny_report(4);
        // Offer a valid envelope under the wrong key.
        let wrong = "f".repeat(32);
        assert_ne!(key, wrong);
        assert!(matches!(
            entries.store(&wrong, &envelope),
            Err(StoreError::Invalid(_))
        ));
        // Plant it by hand (simulating a file renamed out-of-band).
        std::fs::create_dir_all(entries.dir()).unwrap();
        std::fs::write(entries.entry_path(&wrong), &envelope).unwrap();
        assert!(matches!(
            entries.load(&wrong),
            Loaded::Quarantined { preserved: true }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_same_key_writes_never_corrupt_the_entry() {
        let dir = temp_dir("race");
        let entries = EntryDir::new(&dir);
        let (key, envelope) = tiny_report(6);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..16 {
                        entries.store(&key, &envelope).unwrap();
                    }
                });
            }
        });
        assert!(matches!(entries.load(&key), Loaded::Valid(_, _)));
        // No stray temp files survived the races.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "leftover temp files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
