//! Networked content-addressed report store for Virgo design sweeps.
//!
//! `BENCH_sweep.json` shows the decisive lever for design-space exploration
//! is the report cache (~9000x warm vs cold), and `SimKey` v5 digests the
//! simulator's own source tree alongside the simulation inputs, which makes
//! cache keys safe to share *across hosts*: an entry can only hit when both
//! the inputs and the simulator build match. This crate turns that property
//! into a shared store — one process (or one CI job) warms it, every other
//! sweep on the fleet reuses it.
//!
//! Three pieces, policy-free by design:
//!
//! * [`protocol`] — a small length-prefixed GET/PUT/STAT frame format over
//!   TCP, keyed by `SimKey` hex digests, with an FNV-1a payload checksum on
//!   every frame.
//! * [`EntryDir`] — the at-rest side: one validated snapshot envelope per
//!   key, written via unique-temp-file + atomic rename, with corrupt-entry
//!   quarantine.
//! * [`StoreServer`] / [`StoreClient`] — a scoped-thread accept loop with
//!   per-connection stats, and a one-connection blocking client with
//!   connect/IO timeouts.
//!
//! Retry and degrade-to-local policy (a dead store must never fail a sweep)
//! deliberately lives in `virgo-sweep`'s `RemoteStore`, not here: the
//! transport stays dumb so the policy stays testable. The `virgo-store`
//! binary serves an [`EntryDir`] forever; see the README's "Shared report
//! store" section for the deployment sketch.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod entries;
pub mod protocol;
pub mod server;

pub use client::{ClientConfig, StoreClient};
pub use entries::{atomic_write, EntryDir, Loaded, StoreError};
pub use server::{ServerStats, StoreHandle, StoreServer};
