//! The wire protocol of the report store: small, length-prefixed, checksummed
//! binary frames over a plain TCP stream.
//!
//! Three requests exist — `GET` (fetch the entry for a key), `PUT` (publish an
//! entry) and `STAT` (fetch the server's counters) — and five responses
//! (`HIT`, `MISS`, `OK`, `ERR`, `STATS`). Every frame carries:
//!
//! ```text
//! request:   magic:u32 | opcode:u8 | key:[u8;32] | len:u32 | checksum:u64 | payload
//! response:  magic:u32 | status:u8 |               len:u32 | checksum:u64 | payload
//! ```
//!
//! (little-endian integers; `key` is the fixed-width lower-case hex form of a
//! [`SimKey`](virgo::SimKey), all zeroes for `STAT`). The checksum is FNV-1a
//! over the payload bytes, so wire corruption is detected *before* the payload
//! is parsed; the payload of `GET`/`PUT` is itself the self-verifying snapshot
//! envelope produced by `SimReport::to_cache_json` (format tag, version,
//! embedded key, payload checksum), so an entry is checked end to end: once on
//! the wire and once at rest.
//!
//! Both sides treat any malformed frame (bad magic, oversized length, checksum
//! mismatch, unknown opcode) as a fatal protocol error for that connection —
//! the stream is no longer in sync, so the only safe move is to drop it. A
//! connection dropped mid-frame (e.g. a client killed mid-`PUT`) therefore
//! never yields a partial entry: the receiver's `read_exact` fails and the
//! frame is discarded whole.

use std::io::{self, Read, Write};

/// Frame magic: `b"VGS1"` little-endian — rejects non-protocol peers and
/// desynchronized streams on the first four bytes.
pub const MAGIC: u32 = u32::from_le_bytes(*b"VGS1");

/// Upper bound on a frame payload. The largest real snapshot envelopes are a
/// few hundred KiB; anything beyond this is a protocol error, not a report.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// Length of the fixed-width hex key field ([`virgo::SimKey::to_hex`]).
pub const KEY_LEN: usize = 32;

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Fetch the entry stored under a key.
    Get = 1,
    /// Publish an entry under a key.
    Put = 2,
    /// Fetch the server's aggregate counters.
    Stat = 3,
}

impl Opcode {
    fn from_u8(v: u8) -> Option<Opcode> {
        match v {
            1 => Some(Opcode::Get),
            2 => Some(Opcode::Put),
            3 => Some(Opcode::Stat),
            _ => None,
        }
    }
}

/// Response status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// `GET`: the entry exists; the payload is its snapshot envelope.
    Hit = 1,
    /// `GET`: no entry under that key.
    Miss = 2,
    /// `PUT`: the entry was validated and stored.
    Ok = 3,
    /// The request was understood but refused (e.g. a corrupt `PUT` payload);
    /// the payload is a human-readable reason.
    Err = 4,
    /// `STAT`: the payload is a JSON rendering of the server counters.
    Stats = 5,
}

impl Status {
    fn from_u8(v: u8) -> Option<Status> {
        match v {
            1 => Some(Status::Hit),
            2 => Some(Status::Miss),
            3 => Some(Status::Ok),
            4 => Some(Status::Err),
            5 => Some(Status::Stats),
            _ => None,
        }
    }
}

/// One parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// What the peer wants.
    pub opcode: Opcode,
    /// Fixed-width hex key (all zeroes for `STAT`).
    pub key: [u8; KEY_LEN],
    /// Payload bytes (empty except for `PUT`).
    pub payload: Vec<u8>,
}

impl Request {
    /// The key field as UTF-8, if it is well-formed lower-case hex.
    pub fn key_hex(&self) -> Option<&str> {
        let s = std::str::from_utf8(&self.key).ok()?;
        s.chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase())
            .then_some(s)
    }
}

/// One parsed response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The verdict.
    pub status: Status,
    /// Payload bytes (entry envelope, error reason or stats JSON).
    pub payload: Vec<u8>,
}

/// FNV-1a over `bytes` — the frame-level payload checksum. Not
/// cryptographic; it exists to catch wire corruption and truncation, the
/// same duty the snapshot envelope's own checksum performs at rest.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn protocol_error(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("store protocol: {what}"),
    )
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_payload(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let len = read_u32(r)?;
    if len > MAX_PAYLOAD {
        return Err(protocol_error("payload exceeds MAX_PAYLOAD"));
    }
    let expected = read_u64(r)?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if checksum64(&payload) != expected {
        return Err(protocol_error("payload checksum mismatch"));
    }
    Ok(payload)
}

fn write_payload(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&checksum64(payload).to_le_bytes())?;
    w.write_all(payload)
}

/// Serializes one request frame.
pub fn write_request(
    w: &mut impl Write,
    opcode: Opcode,
    key: &[u8; KEY_LEN],
    payload: &[u8],
) -> io::Result<()> {
    if payload.len() as u64 > u64::from(MAX_PAYLOAD) {
        return Err(protocol_error("payload exceeds MAX_PAYLOAD"));
    }
    w.write_all(&MAGIC.to_le_bytes())?;
    w.write_all(&[opcode as u8])?;
    w.write_all(key)?;
    write_payload(w, payload)?;
    w.flush()
}

/// Parses one request frame (blocking until complete or the stream errors).
pub fn read_request(r: &mut impl Read) -> io::Result<Request> {
    if read_u32(r)? != MAGIC {
        return Err(protocol_error("bad request magic"));
    }
    let mut op = [0u8; 1];
    r.read_exact(&mut op)?;
    let opcode = Opcode::from_u8(op[0]).ok_or_else(|| protocol_error("unknown opcode"))?;
    let mut key = [0u8; KEY_LEN];
    r.read_exact(&mut key)?;
    let payload = read_payload(r)?;
    Ok(Request {
        opcode,
        key,
        payload,
    })
}

/// Serializes one response frame.
pub fn write_response(w: &mut impl Write, status: Status, payload: &[u8]) -> io::Result<()> {
    if payload.len() as u64 > u64::from(MAX_PAYLOAD) {
        return Err(protocol_error("payload exceeds MAX_PAYLOAD"));
    }
    w.write_all(&MAGIC.to_le_bytes())?;
    w.write_all(&[status as u8])?;
    write_payload(w, payload)?;
    w.flush()
}

/// Parses one response frame.
pub fn read_response(r: &mut impl Read) -> io::Result<Response> {
    if read_u32(r)? != MAGIC {
        return Err(protocol_error("bad response magic"));
    }
    let mut st = [0u8; 1];
    r.read_exact(&mut st)?;
    let status = Status::from_u8(st[0]).ok_or_else(|| protocol_error("unknown status"))?;
    let payload = read_payload(r)?;
    Ok(Response { status, payload })
}

/// Renders a key string into the fixed-width frame field.
///
/// # Panics
///
/// Panics if `key_hex` is not exactly [`KEY_LEN`] bytes — keys come from
/// [`virgo::SimKey::to_hex`], which is fixed-width by construction.
pub fn key_field(key_hex: &str) -> [u8; KEY_LEN] {
    let bytes = key_hex.as_bytes();
    assert_eq!(bytes.len(), KEY_LEN, "store keys are 32-char hex");
    let mut field = [0u8; KEY_LEN];
    field.copy_from_slice(bytes);
    field
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let key = key_field(&"ab".repeat(16));
        let mut buf = Vec::new();
        write_request(&mut buf, Opcode::Put, &key, b"{\"hello\":1}").unwrap();
        let parsed = read_request(&mut buf.as_slice()).unwrap();
        assert_eq!(parsed.opcode, Opcode::Put);
        assert_eq!(parsed.key, key);
        assert_eq!(parsed.payload, b"{\"hello\":1}");
        assert_eq!(parsed.key_hex(), Some("ab".repeat(16).as_str()));
    }

    #[test]
    fn response_roundtrip() {
        let mut buf = Vec::new();
        write_response(&mut buf, Status::Hit, b"payload").unwrap();
        let parsed = read_response(&mut buf.as_slice()).unwrap();
        assert_eq!(parsed.status, Status::Hit);
        assert_eq!(parsed.payload, b"payload");
    }

    #[test]
    fn corrupt_payload_is_rejected_by_checksum() {
        let key = key_field(&"00".repeat(16));
        let mut buf = Vec::new();
        write_request(&mut buf, Opcode::Put, &key, b"abcdefgh").unwrap();
        // Flip one payload byte; the header checksum no longer matches.
        let n = buf.len();
        buf[n - 3] ^= 0x40;
        let err = read_request(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_partial_entry() {
        let key = key_field(&"11".repeat(16));
        let mut buf = Vec::new();
        write_request(&mut buf, Opcode::Put, &key, &vec![7u8; 1024]).unwrap();
        buf.truncate(buf.len() / 2); // the peer died mid-PUT
        assert!(read_request(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn bad_magic_and_unknown_opcode_fail() {
        let key = key_field(&"22".repeat(16));
        let mut buf = Vec::new();
        write_request(&mut buf, Opcode::Get, &key, b"").unwrap();
        let mut garbled = buf.clone();
        garbled[0] ^= 0xff;
        assert!(read_request(&mut garbled.as_slice()).is_err());
        let mut unknown = buf.clone();
        unknown[4] = 200;
        assert!(read_request(&mut unknown.as_slice()).is_err());
    }

    #[test]
    fn uppercase_or_non_hex_keys_are_refused() {
        let mut req = Request {
            opcode: Opcode::Get,
            key: key_field(&"ab".repeat(16)),
            payload: Vec::new(),
        };
        assert!(req.key_hex().is_some());
        req.key[0] = b'G';
        assert_eq!(req.key_hex(), None);
        req.key[0] = b'A';
        assert_eq!(req.key_hex(), None, "keys are canonical lower-case hex");
    }

    #[test]
    fn checksum_is_order_sensitive() {
        assert_ne!(checksum64(b"ab"), checksum64(b"ba"));
        assert_ne!(checksum64(b""), checksum64(b"\0"));
    }
}
