//! The store server: a [`TcpListener`] accept loop on [`std::thread::scope`]
//! with one scoped handler thread per connection.
//!
//! Each handler answers GET/PUT/STAT frames against a shared [`EntryDir`].
//! PUT payloads are validated end-to-end before anything touches the entry
//! directory — a corrupt envelope earns an `ERR` response and quarantines
//! nothing, while an on-disk entry that fails validation at GET time is
//! quarantined and answered as a `MISS`. A connection dropped mid-frame
//! (a client killed mid-PUT) surfaces as a read error, so the partial frame
//! is discarded whole and no entry is written.
//!
//! The accept loop polls a non-blocking listener against a stop flag, so
//! [`StoreHandle::stop`] shuts the server down promptly even when idle;
//! handlers poll the same flag between frames with a short read timeout and
//! allow an in-flight frame a generous (but bounded) completion window.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::entries::{EntryDir, Loaded, StoreError};
use crate::protocol::{read_request, write_response, Opcode, Request, Status};

/// How often an idle connection re-checks the stop flag.
const IDLE_POLL: Duration = Duration::from_millis(50);
/// How long a peer gets to complete a frame it has started sending.
const FRAME_TIMEOUT: Duration = Duration::from_secs(2);
/// How often the accept loop re-checks the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Monotonically counted aggregate server statistics, shared by every
/// connection handler.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// GET requests answered with `HIT`.
    pub get_hits: AtomicU64,
    /// GET requests answered with `MISS`.
    pub get_misses: AtomicU64,
    /// PUT requests accepted and stored.
    pub put_oks: AtomicU64,
    /// PUT requests refused (invalid envelope or write failure).
    pub put_rejects: AtomicU64,
    /// On-disk entries quarantined at GET time.
    pub quarantined: AtomicU64,
    /// Connections dropped on a malformed or truncated frame.
    pub protocol_errors: AtomicU64,
    /// Payload bytes received in PUT frames.
    pub bytes_in: AtomicU64,
    /// Payload bytes sent in HIT frames.
    pub bytes_out: AtomicU64,
}

impl ServerStats {
    /// Renders the counters as a small JSON object (the `STATS` payload).
    pub fn to_json(&self) -> String {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        format!(
            concat!(
                "{{\"connections\": {}, \"get_hits\": {}, \"get_misses\": {}, ",
                "\"put_oks\": {}, \"put_rejects\": {}, \"quarantined\": {}, ",
                "\"protocol_errors\": {}, \"bytes_in\": {}, \"bytes_out\": {}}}"
            ),
            g(&self.connections),
            g(&self.get_hits),
            g(&self.get_misses),
            g(&self.put_oks),
            g(&self.put_rejects),
            g(&self.quarantined),
            g(&self.protocol_errors),
            g(&self.bytes_in),
            g(&self.bytes_out),
        )
    }
}

/// Per-connection counters, reported on close when the server is verbose.
#[derive(Debug, Default, Clone, Copy)]
struct ConnStats {
    gets: u64,
    hits: u64,
    puts: u64,
    rejects: u64,
    errors: u64,
}

/// A running store server bound to a socket address.
#[derive(Debug)]
pub struct StoreServer {
    listener: TcpListener,
    entries: EntryDir,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    verbose: bool,
}

impl StoreServer {
    /// Binds a server to `addr` (use port 0 for an ephemeral port) serving
    /// entries from `entries`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, entries: EntryDir) -> std::io::Result<StoreServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(StoreServer {
            listener,
            entries,
            stats: Arc::new(ServerStats::default()),
            stop: Arc::new(AtomicBool::new(false)),
            verbose: false,
        })
    }

    /// Enables per-connection stat lines on stderr (used by the binary).
    pub fn verbose(mut self, verbose: bool) -> Self {
        self.verbose = verbose;
        self
    }

    /// The bound address (reports the actual port for ephemeral binds).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared aggregate counters.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// The stop flag; setting it makes [`run`](StoreServer::run) return
    /// after at most one poll interval.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Serves connections until the stop flag is raised. Each connection is
    /// handled on its own scoped thread; `run` returns only after every
    /// handler has finished.
    pub fn run(&self) {
        std::thread::scope(|scope| {
            while !self.stop.load(Ordering::Relaxed) {
                match self.listener.accept() {
                    Ok((stream, peer)) => {
                        let conn_id = self.stats.connections.fetch_add(1, Ordering::Relaxed) + 1;
                        scope.spawn(move || self.handle(stream, peer, conn_id));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
        });
    }

    /// Consumes the server and runs it on a background thread, returning a
    /// handle that can stop and join it. Used by in-process tests/benches;
    /// the standalone binary calls [`run`](StoreServer::run) directly.
    pub fn spawn(self) -> std::io::Result<StoreHandle> {
        let addr = self.local_addr()?;
        let stats = self.stats();
        let stop = self.stop_flag();
        let join = std::thread::spawn(move || self.run());
        Ok(StoreHandle {
            addr,
            stats,
            stop,
            join: Some(join),
        })
    }

    /// Serves one connection until the peer hangs up, a frame is malformed
    /// or the stop flag is raised.
    fn handle(&self, mut stream: TcpStream, peer: SocketAddr, conn_id: u64) {
        let mut conn = ConnStats::default();
        loop {
            match self.read_frame(&mut stream) {
                Ok(Some(request)) => {
                    if !self.answer(&mut stream, request, &mut conn) {
                        break;
                    }
                }
                Ok(None) => break, // clean disconnect or stop requested
                Err(_) => {
                    // Malformed/truncated frame: the stream is out of sync,
                    // drop the connection. Nothing was stored.
                    conn.errors += 1;
                    self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
        if self.verbose {
            eprintln!(
                "[virgo-store] conn #{conn_id} {peer}: {} gets ({} hit), {} puts ({} rejected), {} protocol errors",
                conn.gets, conn.hits, conn.puts, conn.rejects, conn.errors
            );
        }
    }

    /// Reads one frame, polling the stop flag while the connection is idle.
    /// Returns `Ok(None)` on clean EOF or stop, `Err` on a malformed or
    /// timed-out frame.
    fn read_frame(&self, stream: &mut TcpStream) -> std::io::Result<Option<Request>> {
        // Idle phase: wait for the first byte with a short timeout so the
        // stop flag is honored promptly on quiet connections.
        let mut first = [0u8; 1];
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return Ok(None);
            }
            stream.set_read_timeout(Some(IDLE_POLL))?;
            match stream.read(&mut first) {
                Ok(0) => return Ok(None), // peer hung up
                Ok(_) => break,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => return Err(e),
            }
        }
        // Frame phase: the peer has started a frame; give it a bounded
        // window to finish. A frame cut short (peer killed mid-PUT) fails
        // read_exact and is discarded whole.
        stream.set_read_timeout(Some(FRAME_TIMEOUT))?;
        let mut reader = first.as_slice().chain(stream);
        read_request(&mut reader).map(Some)
    }

    /// Answers one request. Returns `false` when the connection should close
    /// (a response could not be written).
    fn answer(&self, stream: &mut TcpStream, request: Request, conn: &mut ConnStats) -> bool {
        let outcome = match request.opcode {
            Opcode::Get => {
                conn.gets += 1;
                let Some(key) = request.key_hex() else {
                    return self.refuse(stream, conn, "malformed key");
                };
                match self.entries.load(key) {
                    Loaded::Valid(text, _) => {
                        conn.hits += 1;
                        self.stats.get_hits.fetch_add(1, Ordering::Relaxed);
                        self.stats
                            .bytes_out
                            .fetch_add(text.len() as u64, Ordering::Relaxed);
                        write_response(stream, Status::Hit, text.as_bytes())
                    }
                    Loaded::Absent => {
                        self.stats.get_misses.fetch_add(1, Ordering::Relaxed);
                        write_response(stream, Status::Miss, b"")
                    }
                    Loaded::Quarantined { .. } => {
                        self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                        self.stats.get_misses.fetch_add(1, Ordering::Relaxed);
                        write_response(stream, Status::Miss, b"")
                    }
                }
            }
            Opcode::Put => {
                conn.puts += 1;
                self.stats
                    .bytes_in
                    .fetch_add(request.payload.len() as u64, Ordering::Relaxed);
                let Some(key) = request.key_hex() else {
                    return self.refuse(stream, conn, "malformed key");
                };
                let Ok(envelope) = std::str::from_utf8(&request.payload) else {
                    return self.refuse(stream, conn, "payload is not UTF-8");
                };
                match self.entries.store(key, envelope) {
                    Ok(_) => {
                        self.stats.put_oks.fetch_add(1, Ordering::Relaxed);
                        write_response(stream, Status::Ok, b"")
                    }
                    Err(e @ StoreError::Invalid(_)) => {
                        return self.refuse(stream, conn, &e.to_string());
                    }
                    Err(e @ StoreError::Io(_)) => {
                        return self.refuse(stream, conn, &e.to_string());
                    }
                }
            }
            Opcode::Stat => write_response(stream, Status::Stats, self.stats.to_json().as_bytes()),
        };
        outcome.is_ok()
    }

    /// Sends an `ERR` response with a reason; keeps the connection open
    /// (the frame itself was well-formed, only its contents were refused).
    fn refuse(&self, stream: &mut TcpStream, conn: &mut ConnStats, reason: &str) -> bool {
        conn.rejects += 1;
        self.stats.put_rejects.fetch_add(1, Ordering::Relaxed);
        write_response(stream, Status::Err, reason.as_bytes()).is_ok()
    }
}

/// A handle to a server running on a background thread.
#[derive(Debug)]
pub struct StoreHandle {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl StoreHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's aggregate counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Raises the stop flag and joins the server thread (idempotent).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for StoreHandle {
    fn drop(&mut self) {
        self.stop();
    }
}
