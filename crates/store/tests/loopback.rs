//! End-to-end loopback tests: a real server on an ephemeral port, a real
//! client, real reports.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

use virgo::{Gpu, GpuConfig, SimKey, SimMode};
use virgo_isa::{DataType, Kernel, KernelInfo, ProgramBuilder, WarpAssignment, WarpOp};
use virgo_store::protocol::{checksum64, key_field, Opcode, MAGIC};
use virgo_store::{EntryDir, StoreClient, StoreServer};

fn tiny_envelope(ops: u32) -> (String, String) {
    let mut b = ProgramBuilder::new();
    b.op_n(
        ops,
        WarpOp::Alu {
            rf_reads: 1,
            rf_writes: 1,
        },
    );
    let kernel = Kernel::new(
        KernelInfo::new("loopback-test", 0, DataType::Fp16),
        vec![WarpAssignment::new(0, 0, Arc::new(b.build()))],
    );
    let config = GpuConfig::virgo();
    let key = SimKey::digest(&config, &kernel, 100_000, SimMode::FastForward);
    let report = Gpu::new(config).run(&kernel, 100_000).unwrap();
    (key.to_hex(), report.to_cache_json(&key.to_hex()))
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("virgo-loopback-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn put_get_stat_roundtrip_over_tcp() {
    let dir = temp_dir("roundtrip");
    let server = StoreServer::bind("127.0.0.1:0", EntryDir::new(&dir)).unwrap();
    let mut handle = server.spawn().unwrap();

    let (key, envelope) = tiny_envelope(7);
    let mut client = StoreClient::connect(handle.addr()).unwrap();
    assert_eq!(client.get(&key).unwrap(), None, "fresh store must miss");
    assert!(client.put(&key, &envelope).unwrap(), "valid PUT must store");
    assert_eq!(
        client.get(&key).unwrap().as_deref(),
        Some(envelope.as_str()),
        "the envelope must come back verbatim"
    );

    // A second, independent connection sees the same entry.
    let mut other = StoreClient::connect(handle.addr()).unwrap();
    assert_eq!(other.get(&key).unwrap().as_deref(), Some(envelope.as_str()));

    let stats = other.stat().unwrap();
    assert!(stats.contains("\"get_hits\": 2"), "stats: {stats}");
    assert!(stats.contains("\"put_oks\": 1"), "stats: {stats}");

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_put_is_refused_and_connection_survives() {
    let dir = temp_dir("corrupt-put");
    let server = StoreServer::bind("127.0.0.1:0", EntryDir::new(&dir)).unwrap();
    let mut handle = server.spawn().unwrap();

    let (key, envelope) = tiny_envelope(3);
    let mut truncated = envelope.clone();
    truncated.truncate(truncated.len() / 2);

    let mut client = StoreClient::connect(handle.addr()).unwrap();
    assert!(
        !client.put(&key, &truncated).unwrap(),
        "a corrupt envelope must be refused"
    );
    // The connection is still in frame sync: the valid PUT goes through.
    assert!(client.put(&key, &envelope).unwrap());
    assert_eq!(
        client.get(&key).unwrap().as_deref(),
        Some(envelope.as_str())
    );
    assert_eq!(
        handle
            .stats()
            .put_rejects
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn connection_dropped_mid_put_stores_nothing() {
    let dir = temp_dir("mid-put-drop");
    let server = StoreServer::bind("127.0.0.1:0", EntryDir::new(&dir)).unwrap();
    let mut handle = server.spawn().unwrap();

    let (key, envelope) = tiny_envelope(4);
    // Hand-write a PUT frame header that promises the full envelope, send
    // half the payload, then vanish — a client killed mid-PUT.
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.write_all(&MAGIC.to_le_bytes()).unwrap();
    raw.write_all(&[Opcode::Put as u8]).unwrap();
    raw.write_all(&key_field(&key)).unwrap();
    raw.write_all(&(envelope.len() as u32).to_le_bytes())
        .unwrap();
    raw.write_all(&checksum64(envelope.as_bytes()).to_le_bytes())
        .unwrap();
    raw.write_all(&envelope.as_bytes()[..envelope.len() / 2])
        .unwrap();
    drop(raw);

    // The server must survive, store nothing, and keep serving.
    let mut client = StoreClient::connect(handle.addr()).unwrap();
    assert_eq!(
        client.get(&key).unwrap(),
        None,
        "a half-sent PUT must not materialize an entry"
    );
    assert!(client.put(&key, &envelope).unwrap());
    assert_eq!(
        client.get(&key).unwrap().as_deref(),
        Some(envelope.as_str())
    );

    handle.stop();
    assert_eq!(
        handle
            .stats()
            .protocol_errors
            .load(std::sync::atomic::Ordering::Relaxed),
        1,
        "the truncated frame must be counted as a protocol error"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stop_joins_promptly_with_idle_connections_open() {
    let dir = temp_dir("stop");
    let server = StoreServer::bind("127.0.0.1:0", EntryDir::new(&dir)).unwrap();
    let mut handle = server.spawn().unwrap();
    // Park two idle connections on the server, then stop it: the handlers
    // poll the stop flag between frames, so the join must not hang.
    let _idle_a = StoreClient::connect(handle.addr()).unwrap();
    let _idle_b = StoreClient::connect(handle.addr()).unwrap();
    let started = std::time::Instant::now();
    handle.stop();
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "stop must not wait on idle connections"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
