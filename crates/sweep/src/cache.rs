//! Content-addressed memoization of [`SimReport`]s over a [`ReportStore`].
//!
//! Simulations are pure functions of `(GpuConfig, Kernel, max_cycles,
//! SimMode)`, digested into a [`SimKey`] by the stable structural hash. The
//! cache memoizes finished reports under that key through whatever storage
//! hierarchy its [`ReportStore`] describes — process memory, a host-local
//! disk directory, a networked `virgo-store` server, or a tiered
//! combination (see [`crate::store`]) — and keeps the lookup-level
//! bookkeeping: which queries hit, which tier answered, which had to
//! simulate.
//!
//! Disk and remote entries are self-verifying (`SimReport::from_cache_json`
//! checks a format tag, version, the embedded key and a payload checksum):
//! a corrupted, truncated or stale-format entry is counted in
//! [`CacheStats::disk_rejects`], quarantined (so the evidence survives for
//! post-mortem) and treated as a **miss**, never a panic. Keys digest the
//! simulator's own source tree alongside the simulation inputs, so entries
//! from an older build miss cleanly.
//!
//! Because simulations are deterministic, the only concurrency hazard is
//! duplicated work: two threads missing the same key simultaneously both
//! simulate and both insert the *identical* report. The cache accepts that
//! (rare) waste instead of holding a lock across a multi-second simulation.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use virgo::{SimKey, SimReport};

use crate::store::{ReportStore, StoreConfig, StoreStats, StoreTier};

/// Hit/miss/eviction counters, surfaced in sweep summaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from cache (any tier) without simulating.
    pub hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
    /// The subset of `hits` that was rehydrated from the disk tier.
    pub disk_hits: u64,
    /// The subset of `hits` served by a networked report store.
    pub remote_hits: u64,
    /// In-memory entries dropped to stay within capacity.
    pub evictions: u64,
    /// On-disk entries rejected (corrupt/stale) and removed from the cache.
    pub disk_rejects: u64,
    /// The subset of `disk_rejects` preserved in the `quarantine/`
    /// subdirectory for post-mortem (the rest could not be moved and were
    /// deleted).
    pub disk_quarantined: u64,
    /// Store operations that found the networked report store unreachable
    /// (each such operation degrades to local compute and is charged
    /// exactly once).
    pub store_unreachable: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]` (zero when no lookups were made).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// Lookup-level counters (which tier answered each `get_or_compute`); the
/// per-tier operation counters live in the store itself.
#[derive(Debug, Clone, Copy, Default)]
struct LookupCounters {
    hits: u64,
    misses: u64,
    disk_hits: u64,
    remote_hits: u64,
}

/// A content-addressed report cache over a pluggable [`ReportStore`].
/// Thread-safe; lookups of different keys simulate concurrently.
#[derive(Debug)]
pub struct ReportCache {
    store: Box<dyn ReportStore>,
    counters: Mutex<LookupCounters>,
    disk_dir: Option<PathBuf>,
}

impl ReportCache {
    /// Default in-memory capacity (see
    /// [`StoreConfig::DEFAULT_MEMORY_CAPACITY`]).
    pub const DEFAULT_CAPACITY: usize = StoreConfig::DEFAULT_MEMORY_CAPACITY;

    /// Creates a cache with an in-memory capacity and an optional disk
    /// directory (created lazily on first write).
    pub fn new(capacity: usize, disk_dir: Option<PathBuf>) -> Self {
        Self::from_config(&StoreConfig::in_memory(capacity).with_disk_dir(disk_dir))
    }

    /// Creates a memory-only cache.
    pub fn in_memory(capacity: usize) -> Self {
        Self::new(capacity, None)
    }

    /// Creates the cache a [`StoreConfig`] describes (memory, and disk /
    /// remote tiers when configured).
    pub fn from_config(config: &StoreConfig) -> Self {
        ReportCache {
            store: config.build_store(),
            counters: Mutex::new(LookupCounters::default()),
            disk_dir: config.disk_dir.clone(),
        }
    }

    /// Wraps an explicit store (e.g. a hand-built tiering for tests).
    pub fn with_store(store: Box<dyn ReportStore>) -> Self {
        ReportCache {
            store,
            counters: Mutex::new(LookupCounters::default()),
            disk_dir: None,
        }
    }

    /// The storage hierarchy behind this cache.
    pub fn store(&self) -> &dyn ReportStore {
        self.store.as_ref()
    }

    /// Per-tier operation counters (zeroes for tiers this cache lacks).
    pub fn store_stats_for(&self, tier: StoreTier) -> StoreStats {
        self.store.stats_for(tier)
    }

    /// The disk directory, if the disk tier is enabled.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// A snapshot of the hit/miss/eviction counters. Lookup-level counters
    /// (`hits`/`misses`/`*_hits`) come from this cache; structural counters
    /// (evictions, rejects, unreachable) from the store tiers.
    pub fn stats(&self) -> CacheStats {
        let lookups = *self.lock();
        let memory = self.store.stats_for(StoreTier::Memory);
        let disk = self.store.stats_for(StoreTier::Disk);
        let remote = self.store.stats_for(StoreTier::Remote);
        CacheStats {
            hits: lookups.hits,
            misses: lookups.misses,
            disk_hits: lookups.disk_hits,
            remote_hits: lookups.remote_hits,
            evictions: memory.evictions,
            disk_rejects: disk.rejects,
            disk_quarantined: disk.quarantined,
            store_unreachable: remote.unreachable,
        }
    }

    /// Number of reports currently held in memory.
    pub fn len(&self) -> usize {
        self.store.volatile_len()
    }

    /// True when no reports are held in memory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every in-memory entry (persistent tiers are untouched) and
    /// resets the counters. Used by benches to measure cold-vs-warm
    /// behavior; also re-arms a remote tier that had been declared offline.
    pub fn clear_memory(&self) {
        self.store.clear_volatile();
        self.store.reset_stats();
        *self.lock() = LookupCounters::default();
    }

    /// Looks `key` up through the store tiers and otherwise runs `compute`
    /// to produce the report; the result is written through to every tier.
    /// Returns the report and whether it was served from cache.
    pub fn get_or_compute(
        &self,
        key: SimKey,
        compute: impl FnOnce() -> SimReport,
    ) -> (Arc<SimReport>, bool) {
        if let Some(hit) = self.store.load(key) {
            let mut counters = self.lock();
            counters.hits += 1;
            match hit.tier {
                StoreTier::Disk => counters.disk_hits += 1,
                StoreTier::Remote => counters.remote_hits += 1,
                StoreTier::Memory | StoreTier::Tiered => {}
            }
            return (hit.report, true);
        }
        let report = Arc::new(compute());
        self.lock().misses += 1;
        self.store.save(key, &report);
        (report, false)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LookupCounters> {
        self.counters.lock().expect("report cache lock")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use virgo::{Gpu, GpuConfig, SimMode};
    use virgo_isa::{DataType, Kernel, KernelInfo, ProgramBuilder, WarpAssignment, WarpOp};

    fn tiny_sim(ops: u32) -> (SimKey, GpuConfig, Kernel) {
        let mut b = ProgramBuilder::new();
        b.op_n(
            ops,
            WarpOp::Alu {
                rf_reads: 1,
                rf_writes: 1,
            },
        );
        let kernel = Kernel::new(
            KernelInfo::new("cache-test", 0, DataType::Fp16),
            vec![WarpAssignment::new(0, 0, StdArc::new(b.build()))],
        );
        let config = GpuConfig::virgo();
        let key = SimKey::digest(&config, &kernel, 100_000, SimMode::FastForward);
        (key, config, kernel)
    }

    fn run(config: &GpuConfig, kernel: &Kernel) -> SimReport {
        Gpu::new(config.clone()).run(kernel, 100_000).unwrap()
    }

    #[test]
    fn memory_hit_after_miss() {
        let cache = ReportCache::in_memory(8);
        let (key, config, kernel) = tiny_sim(4);
        let (_, cached) = cache.get_or_compute(key, || run(&config, &kernel));
        assert!(!cached);
        let (report, cached) = cache.get_or_compute(key, || panic!("must not recompute"));
        assert!(cached);
        assert_eq!(report.instructions_retired(), 4);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.disk_hits), (1, 1, 0));
        assert_eq!((stats.remote_hits, stats.store_unreachable), (0, 0));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fifo_eviction_counts() {
        let cache = ReportCache::in_memory(2);
        let (_, config, kernel) = tiny_sim(1);
        let base = run(&config, &kernel);
        for i in 0..4u64 {
            let key = SimKey::digest(
                &config,
                &kernel,
                100_000 + i, // distinct budgets -> distinct keys
                SimMode::FastForward,
            );
            cache.get_or_compute(key, || base.clone());
        }
        let stats = cache.stats();
        assert_eq!(cache.len(), 2);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.misses, 4);
    }

    #[test]
    fn disk_layer_survives_memory_clear() {
        let dir = std::env::temp_dir().join(format!("virgo-sweep-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ReportCache::new(8, Some(dir.clone()));
        let (key, config, kernel) = tiny_sim(6);
        let (first, cached) = cache.get_or_compute(key, || run(&config, &kernel));
        assert!(!cached);
        cache.clear_memory();
        let (second, cached) = cache.get_or_compute(key, || panic!("disk should serve this"));
        assert!(cached);
        assert_eq!(cache.stats().disk_hits, 1);
        assert_eq!(
            format!("{:?}", *first),
            format!("{:?}", *second),
            "disk round-trip must be bit-identical"
        );
        // The disk hit was promoted back into memory: the next lookup is a
        // pure memory hit.
        let (_, cached) = cache.get_or_compute(key, || panic!("memory should serve this"));
        assert!(cached);
        assert_eq!(cache.stats().disk_hits, 1, "second hit must be memory");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_is_a_miss_not_a_panic() {
        let dir = std::env::temp_dir().join(format!("virgo-sweep-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ReportCache::new(8, Some(dir.clone()));
        let (key, config, kernel) = tiny_sim(3);
        cache.get_or_compute(key, || run(&config, &kernel));
        // Corrupt the entry on disk, then force a re-read.
        let path = dir.join(format!("{}.json", key.to_hex()));
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.truncate(text.len() / 2);
        std::fs::write(&path, text).unwrap();
        cache.clear_memory();
        let (report, cached) = cache.get_or_compute(key, || run(&config, &kernel));
        assert!(!cached, "corrupt entry must be treated as a miss");
        assert_eq!(report.instructions_retired(), 3);
        let stats = cache.stats();
        assert_eq!(stats.disk_rejects, 1);
        assert_eq!(stats.disk_quarantined, 1);
        assert_eq!(stats.misses, 1);
        // The corrupt bytes were preserved for post-mortem, not destroyed.
        let quarantined = dir
            .join("quarantine")
            .join(format!("{}.json", key.to_hex()));
        assert!(quarantined.exists(), "corrupt entry must be quarantined");
        // The re-simulation rewrote a valid entry.
        assert!(SimReport::from_cache_json(
            &std::fs::read_to_string(&path).unwrap(),
            &key.to_hex()
        )
        .is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_key_entry_is_rejected_and_resimulated() {
        // An entry whose embedded key disagrees with its file name (e.g. a
        // file copied or renamed by hand, or a key-scheme change that
        // re-mapped names) must be quarantined and recomputed, not served.
        let dir = std::env::temp_dir().join(format!("virgo-sweep-mismatch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ReportCache::new(8, Some(dir.clone()));
        let (key_a, config, kernel_a) = tiny_sim(2);
        cache.get_or_compute(key_a, || run(&config, &kernel_a));
        // Masquerade kernel A's entry as the entry for a different key.
        let key_b = SimKey::digest(&config, &kernel_a, 200_000, SimMode::FastForward);
        assert_ne!(key_a, key_b);
        std::fs::copy(
            dir.join(format!("{}.json", key_a.to_hex())),
            dir.join(format!("{}.json", key_b.to_hex())),
        )
        .unwrap();
        let (report, cached) = cache.get_or_compute(key_b, || run(&config, &kernel_a));
        assert!(!cached, "a mismatched entry must be treated as a miss");
        assert_eq!(report.instructions_retired(), 2);
        let stats = cache.stats();
        assert_eq!(stats.disk_rejects, 1);
        assert_eq!(stats.disk_quarantined, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreachable_remote_tier_degrades_to_local_compute() {
        let config = StoreConfig::in_memory(8).with_remote_addr(Some("127.0.0.1:9".to_string()));
        let cache = ReportCache::from_config(&config);
        let (key, gpu_config, kernel) = tiny_sim(5);
        let (report, cached) = cache.get_or_compute(key, || run(&gpu_config, &kernel));
        assert!(!cached, "a dead store must degrade to a local miss");
        assert_eq!(report.instructions_retired(), 5);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(
            stats.store_unreachable, 2,
            "one failed load + one failed save, each charged once"
        );
        // The memory tier still works: the next lookup is a hit.
        let (_, cached) = cache.get_or_compute(key, || panic!("memory must serve this"));
        assert!(cached);
    }
}
