//! Content-addressed memoization of [`SimReport`]s.
//!
//! Simulations are pure functions of `(GpuConfig, Kernel, max_cycles,
//! SimMode)`, digested into a [`SimKey`] by the stable structural hash. The
//! cache memoizes finished reports under that key at two levels:
//!
//! * **in memory** — an `Arc<SimReport>` map with FIFO eviction beyond a
//!   configurable capacity, shared by every thread of the process, and
//! * **on disk** (optional) — one plain-JSON file per key under a cache
//!   directory (conventionally `target/sweep-cache/`), written atomically
//!   via a temp-file rename, so repeated sweep *invocations* skip
//!   re-simulation too.
//!
//! Disk entries are self-verifying (`SimReport::from_cache_json` checks a
//! format tag, version, the embedded key and a payload checksum): a
//! corrupted, truncated or stale-format file is counted in
//! [`CacheStats::disk_rejects`], moved into a `quarantine/` subdirectory
//! (so the evidence survives for post-mortem instead of being destroyed;
//! deletion is the fallback when the move fails) and treated as a **miss**,
//! never a panic. The disk layer is *on by default* at the service level
//! (governed by `VIRGO_SWEEP_CACHE` — see `service::default_disk_dir`):
//! keys digest the simulator's own source tree alongside the simulation
//! inputs, so entries from an older build miss cleanly.
//!
//! Because simulations are deterministic, the only concurrency hazard is
//! duplicated work: two threads missing the same key simultaneously both
//! simulate and both insert the *identical* report. The cache accepts that
//! (rare) waste instead of holding a lock across a multi-second simulation.

use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use virgo::{SimKey, SimReport};

/// Hit/miss/eviction counters, surfaced in sweep summaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from cache (memory or disk) without simulating.
    pub hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
    /// The subset of `hits` that was rehydrated from the disk layer.
    pub disk_hits: u64,
    /// In-memory entries dropped to stay within capacity.
    pub evictions: u64,
    /// On-disk entries rejected (corrupt/stale) and removed from the cache.
    pub disk_rejects: u64,
    /// The subset of `disk_rejects` preserved in the `quarantine/`
    /// subdirectory for post-mortem (the rest could not be moved and were
    /// deleted).
    pub disk_quarantined: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]` (zero when no lookups were made).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<SimKey, Arc<SimReport>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<SimKey>,
    stats: CacheStats,
}

/// A two-level (memory + optional disk) report cache. Thread-safe; lookups
/// of different keys simulate concurrently.
#[derive(Debug)]
pub struct ReportCache {
    inner: Mutex<Inner>,
    capacity: usize,
    disk_dir: Option<PathBuf>,
}

impl ReportCache {
    /// Default in-memory capacity: comfortably holds the full paper grid
    /// (4 designs × 3 shapes × 4 cluster counts × 2 modes) many times over.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Creates a cache with an in-memory capacity and an optional disk
    /// directory (created lazily on first write).
    pub fn new(capacity: usize, disk_dir: Option<PathBuf>) -> Self {
        ReportCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            disk_dir,
        }
    }

    /// Creates a memory-only cache.
    pub fn in_memory(capacity: usize) -> Self {
        Self::new(capacity, None)
    }

    /// The disk directory, if the disk layer is enabled.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// A snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// Number of reports currently held in memory.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True when no reports are held in memory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every in-memory entry (the disk layer is untouched) and resets
    /// the counters. Used by benches to measure cold-vs-warm behavior.
    pub fn clear_memory(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.order.clear();
        inner.stats = CacheStats::default();
    }

    /// Looks `key` up in memory, then on disk, and otherwise runs `compute`
    /// to produce the report; the result is inserted into both layers.
    /// Returns the report and whether it was served from cache.
    pub fn get_or_compute(
        &self,
        key: SimKey,
        compute: impl FnOnce() -> SimReport,
    ) -> (Arc<SimReport>, bool) {
        if let Some(report) = self.memory_get(key) {
            return (report, true);
        }
        if let Some(report) = self.disk_get(key) {
            let report = self.insert_memory(key, report, true);
            return (report, true);
        }
        let report = compute();
        self.disk_put(key, &report);
        let report = self.insert_memory(key, report, false);
        (report, false)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("report cache lock")
    }

    fn memory_get(&self, key: SimKey) -> Option<Arc<SimReport>> {
        let mut inner = self.lock();
        let hit = inner.map.get(&key).cloned();
        if hit.is_some() {
            inner.stats.hits += 1;
        }
        hit
    }

    /// Inserts a freshly produced report, evicting FIFO beyond capacity.
    /// `from_disk` picks which counter the lookup lands in; the counter is
    /// charged here (after the compute) so a lookup is counted exactly once.
    fn insert_memory(&self, key: SimKey, report: SimReport, from_disk: bool) -> Arc<SimReport> {
        let report = Arc::new(report);
        let mut inner = self.lock();
        if from_disk {
            inner.stats.hits += 1;
            inner.stats.disk_hits += 1;
        } else {
            inner.stats.misses += 1;
        }
        if inner.map.insert(key, Arc::clone(&report)).is_none() {
            inner.order.push_back(key);
        }
        while inner.map.len() > self.capacity {
            let Some(victim) = inner.order.pop_front() else {
                break;
            };
            if inner.map.remove(&victim).is_some() {
                inner.stats.evictions += 1;
            }
        }
        report
    }

    fn entry_path(&self, key: SimKey) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|dir| dir.join(format!("{}.json", key.to_hex())))
    }

    fn disk_get(&self, key: SimKey) -> Option<SimReport> {
        let path = self.entry_path(key)?;
        let text = std::fs::read_to_string(&path).ok()?;
        match SimReport::from_cache_json(&text, &key.to_hex()) {
            Ok(report) => Some(report),
            Err(_) => {
                // Corrupt or stale entry: quarantine it and report a miss.
                // The reject counter is how corruption surfaces in summaries.
                self.quarantine(&path);
                None
            }
        }
    }

    /// Moves a rejected entry into `<disk_dir>/quarantine/`, keeping the
    /// corrupt bytes around for post-mortem instead of destroying the only
    /// evidence. Falls back to deletion when the move fails (e.g. the
    /// quarantine directory cannot be created), so a bad entry never keeps
    /// masquerading as a cache hit either way.
    fn quarantine(&self, path: &Path) {
        let moved = self.disk_dir.as_ref().is_some_and(|dir| {
            let qdir = dir.join("quarantine");
            std::fs::create_dir_all(&qdir).is_ok()
                && path
                    .file_name()
                    .is_some_and(|name| std::fs::rename(path, qdir.join(name)).is_ok())
        });
        if !moved {
            let _ = std::fs::remove_file(path);
        }
        let mut inner = self.lock();
        inner.stats.disk_rejects += 1;
        if moved {
            inner.stats.disk_quarantined += 1;
        }
    }

    fn disk_put(&self, key: SimKey, report: &SimReport) {
        let Some(path) = self.entry_path(key) else {
            return;
        };
        let Some(dir) = path.parent() else { return };
        // Disk-layer failures (read-only FS, full disk) degrade to
        // memory-only caching; they never fail the simulation itself.
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let text = report.to_cache_json(&key.to_hex());
        if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use virgo::{Gpu, GpuConfig, SimMode};
    use virgo_isa::{DataType, Kernel, KernelInfo, ProgramBuilder, WarpAssignment, WarpOp};

    fn tiny_sim(ops: u32) -> (SimKey, GpuConfig, Kernel) {
        let mut b = ProgramBuilder::new();
        b.op_n(
            ops,
            WarpOp::Alu {
                rf_reads: 1,
                rf_writes: 1,
            },
        );
        let kernel = Kernel::new(
            KernelInfo::new("cache-test", 0, DataType::Fp16),
            vec![WarpAssignment::new(0, 0, StdArc::new(b.build()))],
        );
        let config = GpuConfig::virgo();
        let key = SimKey::digest(&config, &kernel, 100_000, SimMode::FastForward);
        (key, config, kernel)
    }

    fn run(config: &GpuConfig, kernel: &Kernel) -> SimReport {
        Gpu::new(config.clone()).run(kernel, 100_000).unwrap()
    }

    #[test]
    fn memory_hit_after_miss() {
        let cache = ReportCache::in_memory(8);
        let (key, config, kernel) = tiny_sim(4);
        let (_, cached) = cache.get_or_compute(key, || run(&config, &kernel));
        assert!(!cached);
        let (report, cached) = cache.get_or_compute(key, || panic!("must not recompute"));
        assert!(cached);
        assert_eq!(report.instructions_retired(), 4);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.disk_hits), (1, 1, 0));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fifo_eviction_counts() {
        let cache = ReportCache::in_memory(2);
        let (_, config, kernel) = tiny_sim(1);
        let base = run(&config, &kernel);
        for i in 0..4u64 {
            let key = SimKey::digest(
                &config,
                &kernel,
                100_000 + i, // distinct budgets -> distinct keys
                SimMode::FastForward,
            );
            cache.get_or_compute(key, || base.clone());
        }
        let stats = cache.stats();
        assert_eq!(cache.len(), 2);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.misses, 4);
    }

    #[test]
    fn disk_layer_survives_memory_clear() {
        let dir = std::env::temp_dir().join(format!("virgo-sweep-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ReportCache::new(8, Some(dir.clone()));
        let (key, config, kernel) = tiny_sim(6);
        let (first, cached) = cache.get_or_compute(key, || run(&config, &kernel));
        assert!(!cached);
        cache.clear_memory();
        let (second, cached) = cache.get_or_compute(key, || panic!("disk should serve this"));
        assert!(cached);
        assert_eq!(cache.stats().disk_hits, 1);
        assert_eq!(
            format!("{:?}", *first),
            format!("{:?}", *second),
            "disk round-trip must be bit-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_is_a_miss_not_a_panic() {
        let dir = std::env::temp_dir().join(format!("virgo-sweep-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ReportCache::new(8, Some(dir.clone()));
        let (key, config, kernel) = tiny_sim(3);
        cache.get_or_compute(key, || run(&config, &kernel));
        // Corrupt the entry on disk, then force a re-read.
        let path = dir.join(format!("{}.json", key.to_hex()));
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.truncate(text.len() / 2);
        std::fs::write(&path, text).unwrap();
        cache.clear_memory();
        let (report, cached) = cache.get_or_compute(key, || run(&config, &kernel));
        assert!(!cached, "corrupt entry must be treated as a miss");
        assert_eq!(report.instructions_retired(), 3);
        let stats = cache.stats();
        assert_eq!(stats.disk_rejects, 1);
        assert_eq!(stats.disk_quarantined, 1);
        assert_eq!(stats.misses, 1);
        // The corrupt bytes were preserved for post-mortem, not destroyed.
        let quarantined = dir
            .join("quarantine")
            .join(format!("{}.json", key.to_hex()));
        assert!(quarantined.exists(), "corrupt entry must be quarantined");
        // The re-simulation rewrote a valid entry.
        assert!(SimReport::from_cache_json(
            &std::fs::read_to_string(&path).unwrap(),
            &key.to_hex()
        )
        .is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_key_entry_is_rejected_and_resimulated() {
        // An entry whose embedded key disagrees with its file name (e.g. a
        // file copied or renamed by hand, or a key-scheme change that
        // re-mapped names) must be quarantined and recomputed, not served.
        let dir = std::env::temp_dir().join(format!("virgo-sweep-mismatch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ReportCache::new(8, Some(dir.clone()));
        let (key_a, config, kernel_a) = tiny_sim(2);
        cache.get_or_compute(key_a, || run(&config, &kernel_a));
        // Masquerade kernel A's entry as the entry for a different key.
        let key_b = SimKey::digest(&config, &kernel_a, 200_000, SimMode::FastForward);
        assert_ne!(key_a, key_b);
        std::fs::copy(
            dir.join(format!("{}.json", key_a.to_hex())),
            dir.join(format!("{}.json", key_b.to_hex())),
        )
        .unwrap();
        let (report, cached) = cache.get_or_compute(key_b, || run(&config, &kernel_a));
        assert!(!cached, "a mismatched entry must be treated as a miss");
        assert_eq!(report.instructions_retired(), 2);
        let stats = cache.stats();
        assert_eq!(stats.disk_rejects, 1);
        assert_eq!(stats.disk_quarantined, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
