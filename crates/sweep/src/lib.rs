//! Design-space sweep engine for the Virgo simulator.
//!
//! The paper's headline claims (Table 1 scalability, the Figure 12 energy
//! comparison) come from *sweeps* — grids of `(design, shape, clusters,
//! mode)` points, each an independent deterministic simulation. This crate
//! makes those sweeps tractable with the classic "scale by sharding,
//! amortize by caching" playbook, in three layers:
//!
//! 1. **Execution** — [`SweepPool`], a bounded work-stealing worker pool
//!    (`std::thread` + a shared injector deque; no external dependencies)
//!    that shards any work list across `min(num_cpus, pool_size)` workers,
//!    streams completions to the caller as they happen and collects results
//!    in submission order.
//! 2. **Caching** — [`ReportCache`], a content-addressed memo of
//!    [`SimReport`](virgo::SimReport)s keyed by
//!    [`SimKey`](virgo::SimKey) (a stable 128-bit digest of the simulation
//!    inputs), held in memory and optionally on disk
//!    (`target/sweep-cache/*.json`; opt in with `VIRGO_SWEEP_CACHE=on` —
//!    keys cannot see simulator-source changes, so the persistent layer is
//!    off unless a sweep campaign asks for it). Cached reports are
//!    **bit-identical** to fresh simulations; corrupt disk entries are
//!    detected and treated as misses.
//! 3. **Query API** — [`SweepService`], which turns "drive this loop" code
//!    into questions: [`SweepService::query`] for one point,
//!    [`SweepService::sweep`] for a grid, and
//!    [`SweepService::cheapest_clusters_meeting`] for "the smallest machine
//!    meeting a latency target".
//!
//! # Example
//!
//! ```
//! use virgo::{DesignKind, SimMode};
//! use virgo_kernels::GemmShape;
//! use virgo_sweep::{SweepPoint, SweepService, SweepWorkload};
//!
//! let svc = SweepService::in_memory(2);
//! let shape = GemmShape { m: 128, n: 128, k: 128 };
//! // One question...
//! let report = svc.query(
//!     DesignKind::Virgo,
//!     SweepWorkload::Gemm(shape),
//!     1,
//!     SimMode::FastForward,
//! );
//! assert!(report.cycles().get() > 0);
//! // ...or a sharded grid; the N=1 point above is already memoized.
//! let points: Vec<SweepPoint> = [1u32, 2]
//!     .into_iter()
//!     .map(|n| SweepPoint::gemm(DesignKind::Virgo, shape).with_clusters(n))
//!     .collect();
//! let outcomes = svc.sweep(&points);
//! assert!(outcomes[0].from_cache);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod pool;
pub mod service;

pub use cache::{CacheStats, ReportCache};
pub use pool::{host_parallelism, Completion, SweepError, SweepPool};
pub use service::{
    default_disk_dir, workspace_cache_dir, SweepOutcome, SweepPoint, SweepService, SweepWorkload,
    DEFAULT_MAX_CYCLES,
};
