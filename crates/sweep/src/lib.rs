//! Design-space sweep engine for the Virgo simulator.
//!
//! The paper's headline claims (Table 1 scalability, the Figure 12 energy
//! comparison) come from *sweeps* — grids of `(design, shape, clusters,
//! mode)` points, each an independent deterministic simulation. This crate
//! makes those sweeps tractable with the classic "scale by sharding,
//! amortize by caching" playbook, in four layers:
//!
//! 1. **Execution** — [`SweepPool`], a bounded work-stealing worker pool
//!    (`std::thread` + a shared injector deque; no external dependencies)
//!    that shards any work list across `min(num_cpus, pool_size)` workers,
//!    streams completions to the caller as they happen and collects results
//!    in submission order.
//! 2. **Storage** — the [`ReportStore`] trait and its tiers:
//!    [`MemoryStore`] (FIFO working set), [`DiskStore`]
//!    (`target/sweep-cache/*.json`, atomic writes, corrupt-entry
//!    quarantine), [`RemoteStore`] (a networked `virgo-store` server with
//!    retry-then-degrade-to-local policy — a dead store never fails a
//!    sweep) and [`TieredStore`] (memory → disk → remote, read-through
//!    with promotion, write-through). Every knob is parsed once into a
//!    typed [`StoreConfig`] (`VIRGO_SWEEP_CACHE`, `VIRGO_SWEEP_STORE`,
//!    `VIRGO_SWEEP_QUARANTINE`).
//! 3. **Memoization** — [`ReportCache`], the content-addressed memo of
//!    [`SimReport`](virgo::SimReport)s keyed by [`SimKey`](virgo::SimKey)
//!    (a stable 128-bit digest of the simulation inputs *and* the
//!    simulator's own source tree) over whatever store hierarchy is
//!    configured. Cached reports are **bit-identical** to fresh
//!    simulations; corrupt entries are detected, quarantined and treated
//!    as misses.
//! 4. **Query API** — [`Query`], one builder-style description of a
//!    simulation, and [`SweepService`], which answers it:
//!    [`SweepService::run`] for one query, [`SweepService::run_all`] for a
//!    grid, and [`SweepService::cheapest_meeting`] for "the smallest
//!    machine meeting a latency target".
//!
//! # Example
//!
//! ```
//! use virgo::DesignKind;
//! use virgo_kernels::GemmShape;
//! use virgo_sweep::{Query, SweepService};
//!
//! let svc = SweepService::in_memory(2);
//! let shape = GemmShape { m: 128, n: 128, k: 128 };
//! // One question...
//! let outcome = svc.run(&Query::new(DesignKind::Virgo, shape));
//! assert!(outcome.report.cycles().get() > 0);
//! // ...or a sharded grid; the one-cluster query above is already memoized.
//! let queries: Vec<_> = [1u32, 2]
//!     .into_iter()
//!     .map(|n| Query::new(DesignKind::Virgo, shape).clusters(n))
//!     .collect();
//! let outcomes = svc.run_all(&queries);
//! assert!(outcomes[0].from_cache);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod pool;
pub mod service;
pub mod store;

pub use cache::{CacheStats, ReportCache};
pub use pool::{host_parallelism, Completion, SweepError, SweepPool};
pub use service::{
    Query, SweepOutcome, SweepPoint, SweepService, SweepWorkload, DEFAULT_MAX_CYCLES,
};
pub use store::{
    default_disk_dir, workspace_cache_dir, DiskStore, MemoryStore, RemoteStore, ReportStore,
    StoreConfig, StoreHit, StoreStats, StoreTier, TieredStore,
};
