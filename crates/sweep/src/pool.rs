//! The sharded worker pool the sweep engine executes on.
//!
//! The previous generation of the bench harness (`run_parallel`) spawned one
//! scoped thread per design point — fine for four designs, hopeless for a
//! full `design × shape × clusters × mode` grid on a many-core host. The
//! [`SweepPool`] instead shards an arbitrary work list across a *bounded*
//! set of workers (`min(num_cpus, pool_size)`), each stealing the next item
//! from a shared injector deque as it finishes its current one, so long and
//! short simulations interleave without head-of-line blocking.
//!
//! Results are **streamed in completion order** (via the callback of
//! [`SweepPool::map_streaming`]) and **collected in submission order** — the
//! returned `Vec` always lines up index-for-index with the input, no matter
//! which worker finished first. That ordering is a documented guarantee, not
//! an accident of collection, and is pinned by regression tests.
//!
//! # Self-healing
//!
//! Long sweep campaigns should not lose a thousand finished points to one
//! panicking job. The [`SweepPool::try_map`] / [`SweepPool::try_map_streaming`]
//! variants isolate each job behind `catch_unwind`, retry a panicking item up
//! to [`SweepPool::MAX_ATTEMPTS`] times with a bounded backoff (transient
//! failures — OOM-killed allocations, poisoned one-shot state — often pass on
//! retry), and quarantine items that still fail as structured [`SweepError`]s
//! in the result vector, preserving submission order for everything else. The
//! plain `map*` methods keep their original contract: a panicking job
//! propagates and the sweep dies loudly.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

/// One completed item, handed to the streaming callback as soon as the
/// worker that ran it sends it back — i.e. in *completion* order.
#[derive(Debug)]
pub struct Completion<'a, R> {
    /// Index of the item in the submitted work list.
    pub index: usize,
    /// How many items have completed so far (including this one).
    pub completed: usize,
    /// Total number of submitted items.
    pub total: usize,
    /// The item's result (owned results are returned by `map*` at the end).
    pub result: &'a R,
}

/// One quarantined sweep item: the job panicked on every attempt. The index
/// points back into the submitted work list, so the caller can requeue or
/// report the exact item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// Index of the item in the submitted work list.
    pub index: usize,
    /// Number of attempts made (always [`SweepPool::MAX_ATTEMPTS`]).
    pub attempts: u32,
    /// The panic payload of the final attempt, when it was a string.
    pub message: String,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sweep item {} quarantined after {} attempt(s): {}",
            self.index, self.attempts, self.message
        )
    }
}

impl std::error::Error for SweepError {}

/// Renders a panic payload for [`SweepError::message`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A bounded, work-stealing worker pool for embarrassingly-parallel sweeps.
///
/// # Example
///
/// ```
/// use virgo_sweep::SweepPool;
///
/// let pool = SweepPool::new(4);
/// let out = pool.map(vec![3u64, 1, 2], |x| x * 10);
/// assert_eq!(out, vec![30, 10, 20]); // submission order, always
/// ```
#[derive(Debug, Clone)]
pub struct SweepPool {
    workers: usize,
}

impl SweepPool {
    /// Attempts per item in the `try_map*` variants before quarantining it.
    pub const MAX_ATTEMPTS: u32 = 3;

    /// Base backoff between retry attempts; attempt `n` waits `n` times this
    /// (bounded: at most `MAX_ATTEMPTS - 1` sleeps totalling a few tens of
    /// milliseconds, never an unbounded exponential).
    pub const RETRY_BACKOFF: Duration = Duration::from_millis(10);

    /// Creates a pool of `min(num_cpus, pool_size)` workers (at least one).
    /// Oversubscribing a host beyond its core count only adds scheduling
    /// noise to deterministic CPU-bound simulations, so the host parallelism
    /// is a hard cap.
    pub fn new(pool_size: usize) -> Self {
        SweepPool {
            workers: pool_size.clamp(1, host_parallelism()),
        }
    }

    /// Creates a pool with one worker per available CPU.
    pub fn with_host_parallelism() -> Self {
        Self::new(host_parallelism())
    }

    /// Number of workers the pool will actually use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `job` over every item and returns the results in submission
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (the panic is propagated).
    pub fn map<T, R, F>(&self, items: Vec<T>, job: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        self.map_streaming(items, job, |_| {})
    }

    /// Runs `job` over every item, invoking `each` on the submitting thread
    /// for every completion (in completion order), and returns the results
    /// in submission order.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (the panic is propagated).
    pub fn map_streaming<T, R, F>(
        &self,
        items: Vec<T>,
        job: F,
        mut each: impl FnMut(Completion<'_, R>),
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let total = items.len();
        if total == 0 {
            return Vec::new();
        }
        let injector: Mutex<VecDeque<(usize, T)>> =
            Mutex::new(items.into_iter().enumerate().collect());
        let workers = self.workers.min(total);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        let mut results: Vec<Option<R>> = (0..total).map(|_| None).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let injector = &injector;
                let job = &job;
                scope.spawn(move || {
                    loop {
                        // Steal the next item; drop the lock before running
                        // the (potentially long) job.
                        let next = injector.lock().expect("injector lock").pop_front();
                        let Some((index, item)) = next else { break };
                        let result = job(item);
                        if tx.send((index, result)).is_err() {
                            break;
                        }
                    }
                });
            }
            // The workers hold the only other senders; drop ours so `rx`
            // disconnects exactly when every worker has exited.
            drop(tx);
            let mut completed = 0usize;
            // If a worker panics its sender is dropped mid-stream; recv then
            // disconnects early and the scope join below propagates the
            // worker's panic rather than ours.
            while let Ok((index, result)) = rx.recv() {
                completed += 1;
                each(Completion {
                    index,
                    completed,
                    total,
                    result: &result,
                });
                results[index] = Some(result);
                if completed == total {
                    break;
                }
            }
        });

        results
            .into_iter()
            .map(|r| r.expect("worker thread panicked"))
            .collect()
    }

    /// Fault-isolated [`SweepPool::map`]: a panicking job is retried up to
    /// [`SweepPool::MAX_ATTEMPTS`] times with a bounded backoff, and an item
    /// that panics on every attempt comes back as `Err(SweepError)` in its
    /// submission-order slot instead of killing the whole sweep. Items need
    /// `Clone` so a failed attempt can be re-run.
    pub fn try_map<T, R, F>(&self, items: Vec<T>, job: F) -> Vec<Result<R, SweepError>>
    where
        T: Clone + Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        self.try_map_streaming(items, job, |_| {})
    }

    /// Fault-isolated [`SweepPool::map_streaming`]: streams completions
    /// (successes *and* quarantines) in completion order and collects them in
    /// submission order. See [`SweepPool::try_map`].
    pub fn try_map_streaming<T, R, F>(
        &self,
        items: Vec<T>,
        job: F,
        each: impl FnMut(Completion<'_, Result<R, SweepError>>),
    ) -> Vec<Result<R, SweepError>>
    where
        T: Clone + Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        self.map_streaming(
            items.into_iter().enumerate().collect(),
            |(index, item): (usize, T)| {
                let mut message = String::new();
                for attempt in 1..=Self::MAX_ATTEMPTS {
                    // The closure only borrows `job` and a clone of the item,
                    // so a panic cannot leave broken state behind for the
                    // next attempt to observe.
                    let arg = item.clone();
                    match std::panic::catch_unwind(AssertUnwindSafe(|| job(arg))) {
                        Ok(result) => return Ok(result),
                        Err(payload) => {
                            message = panic_message(payload.as_ref());
                            if attempt < Self::MAX_ATTEMPTS {
                                std::thread::sleep(Self::RETRY_BACKOFF * attempt);
                            }
                        }
                    }
                }
                Err(SweepError {
                    index,
                    attempts: Self::MAX_ATTEMPTS,
                    message,
                })
            },
            each,
        )
    }
}

impl Default for SweepPool {
    fn default() -> Self {
        Self::with_host_parallelism()
    }
}

/// Number of CPUs the host exposes (1 if unknown).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_size_is_clamped() {
        assert_eq!(SweepPool::new(0).workers(), 1);
        assert!(SweepPool::new(64).workers() <= host_parallelism());
        assert!(SweepPool::with_host_parallelism().workers() >= 1);
    }

    #[test]
    fn results_preserve_submission_order_not_just_values() {
        // Items deliberately finish out of submission order: item 0 is the
        // slowest, so a completion-ordered collection would reverse the
        // list. The old `run_parallel` test only checked *values*; this pins
        // the order semantics.
        let pool = SweepPool::new(4);
        let out = pool.map(vec![30u64, 20, 10, 0], |delay| {
            std::thread::sleep(std::time::Duration::from_millis(delay));
            delay
        });
        assert_eq!(out, vec![30, 20, 10, 0]);
    }

    #[test]
    fn streaming_reports_every_completion_once() {
        let pool = SweepPool::new(2);
        let mut seen = Vec::new();
        let out = pool.map_streaming(
            (0..16u64).collect(),
            |x| x * x,
            |c| seen.push((c.index, *c.result, c.completed, c.total)),
        );
        assert_eq!(out, (0..16u64).map(|x| x * x).collect::<Vec<_>>());
        assert_eq!(seen.len(), 16);
        // Every index appears exactly once, `completed` counts 1..=16.
        let mut indices: Vec<usize> = seen.iter().map(|s| s.0).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..16).collect::<Vec<_>>());
        assert_eq!(seen.last().unwrap().2, 16);
        assert!(seen.iter().all(|s| s.3 == 16));
        assert!(seen.iter().all(|s| s.1 == (s.0 as u64).pow(2)));
    }

    #[test]
    fn empty_input_returns_empty() {
        let pool = SweepPool::new(4);
        let out: Vec<u64> = pool.map(Vec::<u64>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn all_items_run_exactly_once() {
        static COUNT: AtomicUsize = AtomicUsize::new(0);
        let pool = SweepPool::new(3);
        let n = 100;
        let out = pool.map((0..n).collect::<Vec<usize>>(), |x| {
            COUNT.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), n);
        assert_eq!(COUNT.load(Ordering::Relaxed), n);
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = SweepPool::new(2);
        let result = std::panic::catch_unwind(|| {
            pool.map(vec![1u64, 2, 3], |x| {
                if x == 2 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn try_map_quarantines_persistent_panics_in_order() {
        let pool = SweepPool::new(2);
        let out = pool.try_map(vec![1u64, 2, 3, 4], |x| {
            if x % 2 == 0 {
                panic!("even item {x}");
            }
            x * 10
        });
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], Ok(10));
        assert_eq!(out[2], Ok(30));
        for (slot, x) in [(1usize, 2u64), (3, 4)] {
            let err = out[slot].as_ref().unwrap_err();
            assert_eq!(err.index, slot);
            assert_eq!(err.attempts, SweepPool::MAX_ATTEMPTS);
            assert_eq!(err.message, format!("even item {x}"));
            assert!(err.to_string().contains("quarantined"), "{err}");
        }
    }

    #[test]
    fn try_map_retries_transient_failures_to_success() {
        // Item 7 panics on its first two attempts and succeeds on the third;
        // the sweep self-heals without surfacing an error.
        static ATTEMPTS: AtomicUsize = AtomicUsize::new(0);
        let pool = SweepPool::new(2);
        let out = pool.try_map(vec![1u64, 7, 3], |x| {
            if x == 7 && ATTEMPTS.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            x
        });
        assert_eq!(out, vec![Ok(1), Ok(7), Ok(3)]);
        assert_eq!(ATTEMPTS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn try_map_streaming_reports_quarantines_too() {
        let pool = SweepPool::new(2);
        let mut quarantined = 0usize;
        let mut succeeded = 0usize;
        let out = pool.try_map_streaming(
            (0..8u64).collect(),
            |x| {
                if x == 5 {
                    panic!("doomed");
                }
                x
            },
            |c| match c.result {
                Ok(_) => succeeded += 1,
                Err(_) => quarantined += 1,
            },
        );
        assert_eq!((succeeded, quarantined), (7, 1));
        assert!(out[5].is_err());
        assert_eq!(out.iter().filter(|r| r.is_ok()).count(), 7);
    }
}
