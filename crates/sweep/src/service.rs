//! The query API over the pool and the report store.
//!
//! Downstream tools (benches, examples, tests, future serving layers) should
//! not drive simulation loops by hand. They build [`Query`]s — a query names
//! a design, a workload shape, a cluster count, a DRAM channel count and a
//! simulation mode, or wraps an arbitrary `(GpuConfig, Kernel)` pair — and
//! ask the [`SweepService`]:
//!
//! * [`SweepService::run`] — "what does this query's report look like?",
//! * [`SweepService::run_all`] — "run this whole grid" (sharded across the
//!   worker pool, memoized through the report store), and
//! * [`SweepService::cheapest_meeting`] — "what is the smallest machine
//!   that meets this latency target?".
//!
//! Every answer flows through the content-addressed report store (memory,
//! and — per [`StoreConfig`] — disk and a networked `virgo-store`), so
//! asking the same question twice — in the same process, in the next one,
//! or on another host sharing the store — never simulates twice, and a
//! cached answer is bit-identical to a fresh simulation (pinned by the
//! fingerprint tests in `tests/integration_sweep.rs` and the shared-store
//! tests in `tests/integration_store.rs`).

use std::fmt;
use std::sync::{Arc, OnceLock};

use virgo::{DesignKind, Gpu, GpuConfig, SimKey, SimMode, SimReport};
use virgo_isa::Kernel;
use virgo_kernels::{build_flash_attention, build_gemm, AttentionShape, GemmShape};

use crate::cache::{CacheStats, ReportCache};
use crate::pool::{Completion, SweepError, SweepPool};
use crate::store::StoreConfig;

/// Cycle budget used for every simulation unless overridden; generous enough
/// for the largest (1024³ Volta-style) run.
pub const DEFAULT_MAX_CYCLES: u64 = 2_000_000_000;

/// The workload dimension of a sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepWorkload {
    /// A GEMM of the given shape (FP16 configurations, as in Tables 3/4).
    Gemm(GemmShape),
    /// A FlashAttention-3 forward pass (FP32 configurations, Section 5.3).
    FlashAttention(AttentionShape),
}

impl SweepWorkload {
    /// The base (single-cluster) GPU configuration this workload runs on for
    /// `design` — FlashAttention uses the FP32 variants.
    pub fn base_config(&self, design: DesignKind) -> GpuConfig {
        match self {
            SweepWorkload::Gemm(_) => GpuConfig::for_design(design),
            SweepWorkload::FlashAttention(_) => GpuConfig::for_design(design).to_fp32(),
        }
    }

    /// Builds the kernel for this workload on `config`.
    ///
    /// # Panics
    ///
    /// Panics if the workload is FlashAttention on a design other than Virgo
    /// or Ampere-style (the only mappings the paper evaluates).
    pub fn build(&self, config: &GpuConfig) -> Kernel {
        match self {
            SweepWorkload::Gemm(shape) => build_gemm(config, *shape),
            SweepWorkload::FlashAttention(shape) => build_flash_attention(config, *shape),
        }
    }
}

impl From<GemmShape> for SweepWorkload {
    fn from(shape: GemmShape) -> Self {
        SweepWorkload::Gemm(shape)
    }
}

impl From<AttentionShape> for SweepWorkload {
    fn from(shape: AttentionShape) -> Self {
        SweepWorkload::FlashAttention(shape)
    }
}

impl fmt::Display for SweepWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepWorkload::Gemm(shape) => write!(f, "gemm {shape}"),
            SweepWorkload::FlashAttention(shape) => write!(f, "attention {shape}"),
        }
    }
}

/// One point of a design-space sweep (the value type behind a standard
/// [`Query`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// The matrix-unit integration style.
    pub design: DesignKind,
    /// The workload (GEMM or FlashAttention) and its shape.
    pub workload: SweepWorkload,
    /// Number of clusters the machine is scaled to.
    pub clusters: u32,
    /// Number of address-interleaved DRAM channels behind the shared L2.
    pub dram_channels: u32,
    /// Simulation-loop mode.
    pub mode: SimMode,
}

impl SweepPoint {
    /// A single-cluster fast-forward GEMM point.
    pub fn gemm(design: DesignKind, shape: GemmShape) -> Self {
        SweepPoint {
            design,
            workload: SweepWorkload::Gemm(shape),
            clusters: 1,
            dram_channels: 1,
            mode: SimMode::FastForward,
        }
    }

    /// A single-cluster fast-forward FlashAttention point.
    pub fn flash_attention(design: DesignKind, shape: AttentionShape) -> Self {
        SweepPoint {
            design,
            workload: SweepWorkload::FlashAttention(shape),
            clusters: 1,
            dram_channels: 1,
            mode: SimMode::FastForward,
        }
    }

    /// Scales the point to `clusters` clusters.
    #[must_use]
    pub fn with_clusters(mut self, clusters: u32) -> Self {
        self.clusters = clusters;
        self
    }

    /// Scales the point's shared DRAM back-end to `channels` channels.
    #[must_use]
    pub fn with_dram_channels(mut self, channels: u32) -> Self {
        self.dram_channels = channels;
        self
    }

    /// Switches the simulation-loop mode.
    #[must_use]
    pub fn with_mode(mut self, mode: SimMode) -> Self {
        self.mode = mode;
        self
    }

    /// The full GPU configuration of this point.
    pub fn config(&self) -> GpuConfig {
        self.workload
            .base_config(self.design)
            .with_clusters(self.clusters.max(1))
            .with_dram_channels(self.dram_channels.max(1))
    }
}

impl fmt::Display for SweepPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} x{}", self.design, self.workload, self.clusters)?;
        if self.dram_channels > 1 {
            write!(f, " ch{}", self.dram_channels)?;
        }
        write!(f, " ({})", self.mode)
    }
}

#[derive(Debug, Clone)]
enum QueryTarget {
    /// A standard design-space point.
    Point(SweepPoint),
    /// An arbitrary configuration/kernel pair (e.g. a custom matrix-unit
    /// sweep that no [`SweepPoint`] describes), still memoized through the
    /// report store.
    Custom {
        config: Box<GpuConfig>,
        kernel: Arc<Kernel>,
        mode: SimMode,
    },
}

/// One question for the [`SweepService`], built fluently:
///
/// ```
/// use virgo::{DesignKind, SimMode};
/// use virgo_kernels::GemmShape;
/// use virgo_sweep::Query;
///
/// let shape = GemmShape { m: 128, n: 128, k: 128 };
/// let query = Query::new(DesignKind::Virgo, shape)
///     .clusters(4)
///     .dram_channels(2)
///     .mode(SimMode::Naive);
/// assert_eq!(query.point().unwrap().clusters, 4);
/// ```
///
/// Defaults: one cluster, one DRAM channel, [`SimMode::FastForward`]. The
/// single `Query` type replaces the former quartet of service entry points
/// (`query`, `query_config`, `sweep`, `cheapest_clusters_meeting`) — every
/// consumer now describes *what* to simulate the same way, whatever it asks
/// the service to do with it.
#[derive(Debug, Clone)]
pub struct Query {
    target: QueryTarget,
}

impl Query {
    /// A standard design-space query: `design` running `workload` (a
    /// [`GemmShape`], [`AttentionShape`] or explicit [`SweepWorkload`]).
    pub fn new(design: DesignKind, workload: impl Into<SweepWorkload>) -> Self {
        Query {
            target: QueryTarget::Point(SweepPoint {
                design,
                workload: workload.into(),
                clusters: 1,
                dram_channels: 1,
                mode: SimMode::FastForward,
            }),
        }
    }

    /// A query for an arbitrary configuration and kernel (defaults to
    /// [`SimMode::FastForward`]; change it with [`Query::mode`]). The
    /// cluster/channel builders do not apply — the configuration is already
    /// complete.
    pub fn custom(config: GpuConfig, kernel: Kernel) -> Self {
        Query {
            target: QueryTarget::Custom {
                config: Box::new(config),
                kernel: Arc::new(kernel),
                mode: SimMode::FastForward,
            },
        }
    }

    /// Scales the machine to `clusters` clusters.
    ///
    /// # Panics
    ///
    /// Panics on a [`Query::custom`] query, whose configuration is already
    /// complete.
    #[must_use]
    pub fn clusters(mut self, clusters: u32) -> Self {
        match &mut self.target {
            QueryTarget::Point(point) => point.clusters = clusters,
            QueryTarget::Custom { .. } => {
                panic!("Query::clusters does not apply to a custom-config query")
            }
        }
        self
    }

    /// Scales the shared DRAM back-end to `channels` channels.
    ///
    /// # Panics
    ///
    /// Panics on a [`Query::custom`] query, whose configuration is already
    /// complete.
    #[must_use]
    pub fn dram_channels(mut self, channels: u32) -> Self {
        match &mut self.target {
            QueryTarget::Point(point) => point.dram_channels = channels,
            QueryTarget::Custom { .. } => {
                panic!("Query::dram_channels does not apply to a custom-config query")
            }
        }
        self
    }

    /// Switches the simulation-loop mode.
    #[must_use]
    pub fn mode(mut self, mode: SimMode) -> Self {
        match &mut self.target {
            QueryTarget::Point(point) => point.mode = mode,
            QueryTarget::Custom { mode: m, .. } => *m = mode,
        }
        self
    }

    /// The design-space point this query describes (`None` for a
    /// custom-config query).
    pub fn point(&self) -> Option<SweepPoint> {
        match &self.target {
            QueryTarget::Point(point) => Some(*point),
            QueryTarget::Custom { .. } => None,
        }
    }

    /// The simulation-loop mode.
    pub fn sim_mode(&self) -> SimMode {
        match &self.target {
            QueryTarget::Point(point) => point.mode,
            QueryTarget::Custom { mode, .. } => *mode,
        }
    }

    /// Resolves the query into the exact simulation inputs: the full GPU
    /// configuration and the kernel (built on demand for standard points).
    pub fn materialize(&self) -> (GpuConfig, Arc<Kernel>, SimMode) {
        match &self.target {
            QueryTarget::Point(point) => {
                let config = point.config();
                let kernel = Arc::new(point.workload.build(&config));
                (config, kernel, point.mode)
            }
            QueryTarget::Custom {
                config,
                kernel,
                mode,
            } => ((**config).clone(), Arc::clone(kernel), *mode),
        }
    }
}

impl From<SweepPoint> for Query {
    fn from(point: SweepPoint) -> Self {
        Query {
            target: QueryTarget::Point(point),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.target {
            QueryTarget::Point(point) => write!(f, "{point}"),
            QueryTarget::Custom { kernel, mode, .. } => {
                write!(f, "custom {:?} ({mode})", kernel.info.name)
            }
        }
    }
}

/// One finished query.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The query that was simulated (or served from the store).
    pub query: Query,
    /// The report; shared, since the store may hand it to several callers.
    pub report: Arc<SimReport>,
    /// True when the report was served from the store (any tier).
    pub from_cache: bool,
}

impl SweepOutcome {
    /// The design-space point behind the query (`None` for custom-config
    /// queries).
    pub fn point(&self) -> Option<SweepPoint> {
        self.query.point()
    }
}

/// The sweep engine: a worker pool, a report store and the query API.
#[derive(Debug)]
pub struct SweepService {
    pool: SweepPool,
    cache: ReportCache,
    max_cycles: u64,
}

impl SweepService {
    /// Creates a service from explicit parts.
    pub fn new(pool: SweepPool, cache: ReportCache, max_cycles: u64) -> Self {
        SweepService {
            pool,
            cache,
            max_cycles,
        }
    }

    /// A service with a host-sized pool and the environment-governed store
    /// ([`StoreConfig::from_env`]): memory, the `VIRGO_SWEEP_CACHE` disk
    /// tier (on by default) and, when `VIRGO_SWEEP_STORE` names a server,
    /// the networked report store.
    pub fn with_defaults() -> Self {
        Self::from_config(&StoreConfig::from_env())
    }

    /// A service with a host-sized pool over the store `config` describes.
    pub fn from_config(config: &StoreConfig) -> Self {
        Self::new(
            SweepPool::with_host_parallelism(),
            ReportCache::from_config(config),
            DEFAULT_MAX_CYCLES,
        )
    }

    /// A memory-only service with an explicit pool size — used by benches
    /// that need cold-cache timings uncontaminated by the shared disk layer.
    pub fn in_memory(pool_size: usize) -> Self {
        Self::new(
            SweepPool::new(pool_size),
            ReportCache::in_memory(ReportCache::DEFAULT_CAPACITY),
            DEFAULT_MAX_CYCLES,
        )
    }

    /// The process-wide shared service. Benches, tests and examples that
    /// just want answers should use this: the in-memory tier then dedupes
    /// across every caller in the process, the disk tier across processes,
    /// and the remote tier (when configured) across hosts.
    pub fn global() -> &'static SweepService {
        static GLOBAL: OnceLock<SweepService> = OnceLock::new();
        GLOBAL.get_or_init(SweepService::with_defaults)
    }

    /// The worker pool.
    pub fn pool(&self) -> &SweepPool {
        &self.pool
    }

    /// The report cache.
    pub fn cache(&self) -> &ReportCache {
        &self.cache
    }

    /// Cache counters (for sweep summaries).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The cycle budget applied to every simulation.
    pub fn max_cycles(&self) -> u64 {
        self.max_cycles
    }

    /// The content-address this service files `query`'s report under —
    /// the [`SimKey`] of its materialized inputs at this service's cycle
    /// budget. Two services with equal budgets (and one simulator build)
    /// agree on every key, which is what makes a shared store coherent.
    pub fn key_for(&self, query: &Query) -> SimKey {
        let (config, kernel, mode) = query.materialize();
        SimKey::digest(&config, &kernel, self.max_cycles, mode)
    }

    /// Answers one query, reporting whether the store served it.
    ///
    /// # Panics
    ///
    /// Panics if the simulation does not complete within the budget (which
    /// indicates a kernel-generation bug, not a user error) — the same
    /// contract the bench helpers have always had.
    pub fn run(&self, query: &Query) -> SweepOutcome {
        let (config, kernel, mode) = query.materialize();
        let key = SimKey::digest(&config, &kernel, self.max_cycles, mode);
        let (report, from_cache) = self.cache.get_or_compute(key, || {
            Gpu::new(config.clone())
                .run_with_mode(&kernel, self.max_cycles, mode)
                .unwrap_or_else(|e| {
                    panic!(
                        "{} kernel {:?} failed: {e}",
                        config.design, kernel.info.name
                    )
                })
        });
        SweepOutcome {
            query: query.clone(),
            report,
            from_cache,
        }
    }

    /// Runs a whole grid of queries, sharded across the worker pool.
    /// Results come back in submission order; cached queries cost a store
    /// lookup.
    ///
    /// # Panics
    ///
    /// Same as [`SweepService::run`].
    pub fn run_all(&self, queries: &[Query]) -> Vec<SweepOutcome> {
        self.run_streaming(queries, |_| {})
    }

    /// Runs a whole grid of queries, invoking `each` on the calling thread
    /// as every query completes (in completion order — a progress stream),
    /// and returns the outcomes in submission order.
    ///
    /// # Panics
    ///
    /// Same as [`SweepService::run`].
    pub fn run_streaming(
        &self,
        queries: &[Query],
        mut each: impl FnMut(&SweepOutcome),
    ) -> Vec<SweepOutcome> {
        self.pool.map_streaming(
            queries.to_vec(),
            |query| self.run(&query),
            |c: Completion<'_, SweepOutcome>| each(c.result),
        )
    }

    /// Fault-isolated [`SweepService::run_all`]: a query whose simulation
    /// panics (after the pool's bounded retries) is quarantined as an
    /// `Err(SweepError)` in its submission-order slot while every other
    /// query completes normally — one bad point no longer costs the whole
    /// campaign. Cached queries are unaffected either way.
    pub fn try_run_all(&self, queries: &[Query]) -> Vec<Result<SweepOutcome, SweepError>> {
        self.pool
            .try_map(queries.to_vec(), |query| self.run(&query))
    }

    /// The smallest cluster count among `candidates` at which `base` (its
    /// cluster count is overridden per candidate) meets the latency target
    /// (in cycles), together with its report. All candidates are swept in
    /// parallel (and memoized), so follow-up questions about the same
    /// workload are free. Returns `None` when no candidate meets the
    /// target.
    ///
    /// # Panics
    ///
    /// Panics when `base` is a custom-config query (no cluster dimension to
    /// sweep), or as [`SweepService::run`].
    pub fn cheapest_meeting(
        &self,
        base: &Query,
        latency_target_cycles: u64,
        candidates: &[u32],
    ) -> Option<(u32, Arc<SimReport>)> {
        assert!(
            base.point().is_some(),
            "cheapest_meeting needs a design-space query, not a custom config"
        );
        let mut sorted: Vec<u32> = candidates.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let queries: Vec<Query> = sorted
            .iter()
            .map(|&clusters| base.clone().clusters(clusters))
            .collect();
        self.run_all(&queries)
            .into_iter()
            .find(|o| o.report.cycles().get() <= latency_target_cycles)
            .map(|o| {
                let clusters = o.point().expect("built from a point").clusters;
                (clusters, o.report)
            })
    }

    // -- Deprecated pre-Query entry points ----------------------------------
    // Thin shims kept for one release; each is exactly a Query spelling.

    /// Answers one `(design, workload, clusters, mode)` question.
    ///
    /// # Panics
    ///
    /// Same as [`SweepService::run`].
    #[deprecated(note = "build a `Query` and call `SweepService::run`")]
    pub fn query(
        &self,
        design: DesignKind,
        workload: SweepWorkload,
        clusters: u32,
        mode: SimMode,
    ) -> Arc<SimReport> {
        self.run(&Query::new(design, workload).clusters(clusters).mode(mode))
            .report
    }

    /// Answers one sweep point, reporting whether the store served it.
    ///
    /// # Panics
    ///
    /// Same as [`SweepService::run`].
    #[deprecated(note = "build a `Query` and call `SweepService::run`")]
    pub fn query_point(&self, point: &SweepPoint) -> (Arc<SimReport>, bool) {
        let outcome = self.run(&Query::from(*point));
        (outcome.report, outcome.from_cache)
    }

    /// Answers for an arbitrary configuration and kernel.
    ///
    /// # Panics
    ///
    /// Same as [`SweepService::run`].
    #[deprecated(note = "use `Query::custom` and call `SweepService::run`")]
    pub fn query_config(
        &self,
        config: &GpuConfig,
        kernel: &Kernel,
        mode: SimMode,
    ) -> (Arc<SimReport>, bool) {
        let outcome = self.run(&Query::custom(config.clone(), kernel.clone()).mode(mode));
        (outcome.report, outcome.from_cache)
    }

    /// Runs a whole grid of points.
    ///
    /// # Panics
    ///
    /// Same as [`SweepService::run`].
    #[deprecated(note = "build `Query`s and call `SweepService::run_all`")]
    pub fn sweep(&self, points: &[SweepPoint]) -> Vec<SweepOutcome> {
        let queries: Vec<Query> = points.iter().map(|&p| Query::from(p)).collect();
        self.run_all(&queries)
    }

    /// Runs a whole grid of points with a completion stream.
    ///
    /// # Panics
    ///
    /// Same as [`SweepService::run`].
    #[deprecated(note = "build `Query`s and call `SweepService::run_streaming`")]
    pub fn sweep_streaming(
        &self,
        points: &[SweepPoint],
        each: impl FnMut(&SweepOutcome),
    ) -> Vec<SweepOutcome> {
        let queries: Vec<Query> = points.iter().map(|&p| Query::from(p)).collect();
        self.run_streaming(&queries, each)
    }

    /// Fault-isolated grid run.
    #[deprecated(note = "build `Query`s and call `SweepService::try_run_all`")]
    pub fn try_sweep(&self, points: &[SweepPoint]) -> Vec<Result<SweepOutcome, SweepError>> {
        let queries: Vec<Query> = points.iter().map(|&p| Query::from(p)).collect();
        self.try_run_all(&queries)
    }

    /// The smallest cluster count among `candidates` meeting the target.
    ///
    /// # Panics
    ///
    /// Same as [`SweepService::run`].
    #[deprecated(note = "build a base `Query` and call `SweepService::cheapest_meeting`")]
    pub fn cheapest_clusters_meeting(
        &self,
        design: DesignKind,
        workload: SweepWorkload,
        mode: SimMode,
        latency_target_cycles: u64,
        candidates: &[u32],
    ) -> Option<(u32, Arc<SimReport>)> {
        self.cheapest_meeting(
            &Query::new(design, workload).mode(mode),
            latency_target_cycles,
            candidates,
        )
    }
}

impl Default for SweepService {
    fn default() -> Self {
        Self::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_gemm() -> GemmShape {
        // The smallest shape every design's tiling accepts (the Virgo GEMM
        // uses 128x64x128 thread-block tiles).
        GemmShape {
            m: 128,
            n: 128,
            k: 128,
        }
    }

    fn service() -> SweepService {
        SweepService::new(
            SweepPool::new(2),
            ReportCache::in_memory(64),
            DEFAULT_MAX_CYCLES,
        )
    }

    #[test]
    fn run_is_memoized() {
        let svc = service();
        let query = Query::new(DesignKind::Virgo, tiny_gemm());
        let a = svc.run(&query);
        let b = svc.run(&query);
        assert!(!a.from_cache);
        assert!(b.from_cache, "second run must be a cache hit");
        assert!(
            Arc::ptr_eq(&a.report, &b.report),
            "memory tier must share the Arc"
        );
        let stats = svc.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn query_builder_sets_every_dimension() {
        let query = Query::new(DesignKind::Virgo, tiny_gemm())
            .clusters(4)
            .dram_channels(2)
            .mode(SimMode::Naive);
        let point = query.point().expect("a standard query has a point");
        assert_eq!(point.clusters, 4);
        assert_eq!(point.dram_channels, 2);
        assert_eq!(point.mode, SimMode::Naive);
        assert_eq!(query.sim_mode(), SimMode::Naive);
        let (config, _, mode) = query.materialize();
        assert_eq!(config.clusters, 4);
        assert_eq!(mode, SimMode::Naive);
        assert!(format!("{query}").contains("ch2"));
    }

    #[test]
    fn run_all_preserves_submission_order_and_marks_cache() {
        let svc = service();
        let queries: Vec<Query> = DesignKind::all()
            .into_iter()
            .map(|d| Query::new(d, tiny_gemm()))
            .collect();
        let first = svc.run_all(&queries);
        assert_eq!(first.len(), 4);
        for (outcome, design) in first.iter().zip(DesignKind::all()) {
            assert_eq!(outcome.point().unwrap().design, design);
            assert!(!outcome.from_cache);
            assert!(outcome.report.cycles().get() > 0);
        }
        let second = svc.run_all(&queries);
        assert!(second.iter().all(|o| o.from_cache));
    }

    #[test]
    fn streaming_callback_sees_every_query() {
        let svc = service();
        let queries: Vec<Query> = [1u32, 2]
            .into_iter()
            .map(|n| Query::new(DesignKind::Virgo, tiny_gemm()).clusters(n))
            .collect();
        let mut seen = 0;
        svc.run_streaming(&queries, |outcome| {
            assert!(outcome.report.cycles().get() > 0);
            seen += 1;
        });
        assert_eq!(seen, 2);
    }

    #[test]
    fn cheapest_meeting_finds_smallest() {
        let svc = service();
        let base = Query::new(DesignKind::Virgo, tiny_gemm());
        // N=1 cycles for the tiny GEMM; target just under it forces N>=2 on
        // Virgo (which scales), and an absurd target of 1 cycle returns None.
        let n1 = svc.run(&base).report.cycles().get();
        let (clusters, report) = svc
            .cheapest_meeting(&base, n1, &[4, 1, 2])
            .expect("n=1 meets its own latency");
        assert_eq!(clusters, 1);
        assert_eq!(report.cycles().get(), n1);
        let tighter = svc.cheapest_meeting(&base, n1 - 1, &[1, 2, 4]);
        if let Some((clusters, report)) = tighter {
            assert!(clusters > 1, "a tighter target needs a bigger machine");
            assert!(report.cycles().get() < n1);
        }
        assert!(svc.cheapest_meeting(&base, 1, &[1, 2]).is_none());
    }

    #[test]
    fn try_run_all_quarantines_a_panicking_query_and_finishes_the_rest() {
        let svc = service();
        // FlashAttention on a Volta-style design has no paper mapping and
        // panics in kernel generation — a deterministic poison point.
        let attention = AttentionShape {
            batch: 1,
            seq_len: 128,
            head_dim: 64,
            heads: 1,
        };
        let queries = vec![
            Query::new(DesignKind::Virgo, tiny_gemm()),
            Query::new(DesignKind::VoltaStyle, attention),
            Query::new(DesignKind::AmpereStyle, tiny_gemm()),
        ];
        let out = svc.try_run_all(&queries);
        assert_eq!(out.len(), 3);
        assert!(out[0].is_ok());
        assert!(out[2].is_ok(), "queries after the poison one must finish");
        let err = out[1].as_ref().unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.attempts, SweepPool::MAX_ATTEMPTS);
    }

    #[test]
    fn dram_channel_queries_are_distinct_store_entries() {
        let svc = service();
        let base = Query::new(DesignKind::Virgo, tiny_gemm()).clusters(2);
        let quad = base.clone().dram_channels(4);
        let single = svc.run(&base);
        let outcome = svc.run(&quad);
        assert!(
            !outcome.from_cache,
            "a different channel count must not alias in the store"
        );
        assert_eq!(outcome.report.dram_channels(), 4);
        assert_eq!(single.report.dram_channels(), 1);
        assert_ne!(svc.key_for(&base), svc.key_for(&quad));
        // The per-channel slices add up to the aggregate interface stats.
        let summed: u64 = outcome
            .report
            .dram_channel_stats()
            .iter()
            .map(|c| c.bytes)
            .sum();
        assert_eq!(summed, outcome.report.dram_stats().bytes);
    }

    #[test]
    fn custom_config_queries_are_memoized_too() {
        let svc = service();
        let config = GpuConfig::virgo();
        let kernel = SweepWorkload::Gemm(tiny_gemm()).build(&config);
        let query = Query::custom(config, kernel);
        let a = svc.run(&query);
        let b = svc.run(&query);
        assert!(!a.from_cache);
        assert!(b.from_cache);
        assert!(Arc::ptr_eq(&a.report, &b.report));
        assert!(query.point().is_none());
        assert!(format!("{query}").starts_with("custom"));
    }

    #[test]
    #[should_panic(expected = "does not apply to a custom-config query")]
    fn cluster_builder_rejects_custom_queries() {
        let config = GpuConfig::virgo();
        let kernel = SweepWorkload::Gemm(tiny_gemm()).build(&config);
        let _ = Query::custom(config, kernel).clusters(2);
    }

    /// The deprecated shims are exactly `Query` spellings: pin old≡new
    /// bit-identity so the one-release migration window cannot drift.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_are_bit_identical_to_query_api() {
        let svc = service();
        let shape = tiny_gemm();
        // query == run(Query)
        let old = svc.query(
            DesignKind::Virgo,
            SweepWorkload::Gemm(shape),
            2,
            SimMode::FastForward,
        );
        let new = svc
            .run(&Query::new(DesignKind::Virgo, shape).clusters(2))
            .report;
        assert_eq!(format!("{old:?}"), format!("{new:?}"));

        // query_point == run(Query::from(point))
        let point = SweepPoint::gemm(DesignKind::AmpereStyle, shape);
        let (old, _) = svc.query_point(&point);
        let new = svc.run(&Query::from(point)).report;
        assert_eq!(format!("{old:?}"), format!("{new:?}"));

        // query_config == run(Query::custom)
        let config = GpuConfig::virgo();
        let kernel = SweepWorkload::Gemm(shape).build(&config);
        let (old, _) = svc.query_config(&config, &kernel, SimMode::FastForward);
        let new = svc.run(&Query::custom(config, kernel)).report;
        assert_eq!(format!("{old:?}"), format!("{new:?}"));

        // sweep == run_all
        let points = vec![
            SweepPoint::gemm(DesignKind::Virgo, shape),
            SweepPoint::gemm(DesignKind::VoltaStyle, shape),
        ];
        let old = svc.sweep(&points);
        let queries: Vec<Query> = points.iter().map(|&p| Query::from(p)).collect();
        let new = svc.run_all(&queries);
        for (o, n) in old.iter().zip(&new) {
            assert_eq!(format!("{:?}", o.report), format!("{:?}", n.report));
        }

        // cheapest_clusters_meeting == cheapest_meeting
        let target = svc
            .run(&Query::new(DesignKind::Virgo, shape))
            .report
            .cycles()
            .get();
        let old = svc.cheapest_clusters_meeting(
            DesignKind::Virgo,
            SweepWorkload::Gemm(shape),
            SimMode::FastForward,
            target,
            &[1, 2],
        );
        let new = svc.cheapest_meeting(&Query::new(DesignKind::Virgo, shape), target, &[1, 2]);
        let (old, new) = (old.unwrap(), new.unwrap());
        assert_eq!(old.0, new.0);
        assert_eq!(format!("{:?}", old.1), format!("{:?}", new.1));
    }
}
