//! The `(design, shape, clusters, mode)` query API over the pool and cache.
//!
//! Downstream tools (benches, examples, tests, future serving layers) should
//! not drive simulation loops by hand. They describe *points* in the design
//! space — a [`SweepPoint`] names a design, a workload shape, a cluster
//! count and a simulation mode — and ask the [`SweepService`] questions:
//!
//! * [`SweepService::query`] — "what does this point's report look like?",
//! * [`SweepService::sweep`] — "run this whole grid" (sharded across the
//!   worker pool, memoized through the report cache), and
//! * [`SweepService::cheapest_clusters_meeting`] — "what is the smallest
//!   machine that meets this latency target?".
//!
//! Every answer flows through the content-addressed report cache, so asking
//! the same question twice — in the same process or (with the disk layer) in
//! the next one — never simulates twice, and a cached answer is bit-identical
//! to a fresh simulation (pinned by the fingerprint tests in
//! `tests/integration_sweep.rs`).

use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use virgo::{DesignKind, Gpu, GpuConfig, SimKey, SimMode, SimReport};
use virgo_isa::Kernel;
use virgo_kernels::{build_flash_attention, build_gemm, AttentionShape, GemmShape};

use crate::cache::{CacheStats, ReportCache};
use crate::pool::{Completion, SweepError, SweepPool};

/// Cycle budget used for every simulation unless overridden; generous enough
/// for the largest (1024³ Volta-style) run.
pub const DEFAULT_MAX_CYCLES: u64 = 2_000_000_000;

/// The workload dimension of a sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepWorkload {
    /// A GEMM of the given shape (FP16 configurations, as in Tables 3/4).
    Gemm(GemmShape),
    /// A FlashAttention-3 forward pass (FP32 configurations, Section 5.3).
    FlashAttention(AttentionShape),
}

impl SweepWorkload {
    /// The base (single-cluster) GPU configuration this workload runs on for
    /// `design` — FlashAttention uses the FP32 variants.
    pub fn base_config(&self, design: DesignKind) -> GpuConfig {
        match self {
            SweepWorkload::Gemm(_) => GpuConfig::for_design(design),
            SweepWorkload::FlashAttention(_) => GpuConfig::for_design(design).to_fp32(),
        }
    }

    /// Builds the kernel for this workload on `config`.
    ///
    /// # Panics
    ///
    /// Panics if the workload is FlashAttention on a design other than Virgo
    /// or Ampere-style (the only mappings the paper evaluates).
    pub fn build(&self, config: &GpuConfig) -> Kernel {
        match self {
            SweepWorkload::Gemm(shape) => build_gemm(config, *shape),
            SweepWorkload::FlashAttention(shape) => build_flash_attention(config, *shape),
        }
    }
}

impl fmt::Display for SweepWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepWorkload::Gemm(shape) => write!(f, "gemm {shape}"),
            SweepWorkload::FlashAttention(shape) => write!(f, "attention {shape}"),
        }
    }
}

/// One point of a design-space sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// The matrix-unit integration style.
    pub design: DesignKind,
    /// The workload (GEMM or FlashAttention) and its shape.
    pub workload: SweepWorkload,
    /// Number of clusters the machine is scaled to.
    pub clusters: u32,
    /// Number of address-interleaved DRAM channels behind the shared L2.
    pub dram_channels: u32,
    /// Simulation-loop mode.
    pub mode: SimMode,
}

impl SweepPoint {
    /// A single-cluster fast-forward GEMM point.
    pub fn gemm(design: DesignKind, shape: GemmShape) -> Self {
        SweepPoint {
            design,
            workload: SweepWorkload::Gemm(shape),
            clusters: 1,
            dram_channels: 1,
            mode: SimMode::FastForward,
        }
    }

    /// A single-cluster fast-forward FlashAttention point.
    pub fn flash_attention(design: DesignKind, shape: AttentionShape) -> Self {
        SweepPoint {
            design,
            workload: SweepWorkload::FlashAttention(shape),
            clusters: 1,
            dram_channels: 1,
            mode: SimMode::FastForward,
        }
    }

    /// Scales the point to `clusters` clusters.
    #[must_use]
    pub fn with_clusters(mut self, clusters: u32) -> Self {
        self.clusters = clusters;
        self
    }

    /// Scales the point's shared DRAM back-end to `channels` channels.
    #[must_use]
    pub fn with_dram_channels(mut self, channels: u32) -> Self {
        self.dram_channels = channels;
        self
    }

    /// Switches the simulation-loop mode.
    #[must_use]
    pub fn with_mode(mut self, mode: SimMode) -> Self {
        self.mode = mode;
        self
    }

    /// The full GPU configuration of this point.
    pub fn config(&self) -> GpuConfig {
        self.workload
            .base_config(self.design)
            .with_clusters(self.clusters.max(1))
            .with_dram_channels(self.dram_channels.max(1))
    }
}

impl fmt::Display for SweepPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} x{}", self.design, self.workload, self.clusters)?;
        if self.dram_channels > 1 {
            write!(f, " ch{}", self.dram_channels)?;
        }
        write!(f, " ({})", self.mode)
    }
}

/// One finished sweep point.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The point that was simulated (or served from cache).
    pub point: SweepPoint,
    /// The report; shared, since the cache may hand it to several callers.
    pub report: Arc<SimReport>,
    /// True when the report was served from the cache (memory or disk).
    pub from_cache: bool,
}

/// The sweep engine: a worker pool, a report cache and the query API.
#[derive(Debug)]
pub struct SweepService {
    pool: SweepPool,
    cache: ReportCache,
    max_cycles: u64,
}

impl SweepService {
    /// Creates a service from explicit parts.
    pub fn new(pool: SweepPool, cache: ReportCache, max_cycles: u64) -> Self {
        SweepService {
            pool,
            cache,
            max_cycles,
        }
    }

    /// A service with host-sized pool, default capacity and the
    /// `VIRGO_SWEEP_CACHE`-governed disk layer (on by default — see
    /// [`default_disk_dir`] for the soundness argument and the opt-out).
    pub fn with_defaults() -> Self {
        Self::new(
            SweepPool::with_host_parallelism(),
            ReportCache::new(ReportCache::DEFAULT_CAPACITY, default_disk_dir()),
            DEFAULT_MAX_CYCLES,
        )
    }

    /// A memory-only service with an explicit pool size — used by benches
    /// that need cold-cache timings uncontaminated by the shared disk layer.
    pub fn in_memory(pool_size: usize) -> Self {
        Self::new(
            SweepPool::new(pool_size),
            ReportCache::in_memory(ReportCache::DEFAULT_CAPACITY),
            DEFAULT_MAX_CYCLES,
        )
    }

    /// The process-wide shared service. Benches, tests and examples that
    /// just want answers should use this: the in-memory layer then dedupes
    /// across every caller in the process, and the disk layer across
    /// processes.
    pub fn global() -> &'static SweepService {
        static GLOBAL: OnceLock<SweepService> = OnceLock::new();
        GLOBAL.get_or_init(SweepService::with_defaults)
    }

    /// The worker pool.
    pub fn pool(&self) -> &SweepPool {
        &self.pool
    }

    /// The report cache.
    pub fn cache(&self) -> &ReportCache {
        &self.cache
    }

    /// Cache counters (for sweep summaries).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The cycle budget applied to every simulation.
    pub fn max_cycles(&self) -> u64 {
        self.max_cycles
    }

    /// Answers one `(design, shape, clusters, mode)` question.
    ///
    /// # Panics
    ///
    /// Panics if the simulation does not complete within the budget (which
    /// indicates a kernel-generation bug, not a user error) — the same
    /// contract the bench helpers have always had.
    pub fn query(
        &self,
        design: DesignKind,
        workload: SweepWorkload,
        clusters: u32,
        mode: SimMode,
    ) -> Arc<SimReport> {
        let point = SweepPoint {
            design,
            workload,
            clusters,
            dram_channels: 1,
            mode,
        };
        self.query_point(&point).0
    }

    /// Answers one sweep point, reporting whether the cache served it.
    ///
    /// # Panics
    ///
    /// Same as [`SweepService::query`].
    pub fn query_point(&self, point: &SweepPoint) -> (Arc<SimReport>, bool) {
        let config = point.config();
        let kernel = point.workload.build(&config);
        self.query_config(&config, &kernel, point.mode)
    }

    /// The lowest-level entry point: answers for an arbitrary configuration
    /// and kernel (e.g. a custom matrix-unit sweep that no [`SweepPoint`]
    /// describes), still memoized through the report cache.
    ///
    /// # Panics
    ///
    /// Same as [`SweepService::query`].
    pub fn query_config(
        &self,
        config: &GpuConfig,
        kernel: &Kernel,
        mode: SimMode,
    ) -> (Arc<SimReport>, bool) {
        let key = SimKey::digest(config, kernel, self.max_cycles, mode);
        self.cache.get_or_compute(key, || {
            Gpu::new(config.clone())
                .run_with_mode(kernel, self.max_cycles, mode)
                .unwrap_or_else(|e| {
                    panic!(
                        "{} kernel {:?} failed: {e}",
                        config.design, kernel.info.name
                    )
                })
        })
    }

    /// Runs a whole grid of points, sharded across the worker pool. Results
    /// come back in submission order; cached points cost a map lookup.
    ///
    /// # Panics
    ///
    /// Same as [`SweepService::query`].
    pub fn sweep(&self, points: &[SweepPoint]) -> Vec<SweepOutcome> {
        self.sweep_streaming(points, |_| {})
    }

    /// Runs a whole grid of points, invoking `each` on the calling thread as
    /// every point completes (in completion order — a progress stream), and
    /// returns the outcomes in submission order.
    ///
    /// # Panics
    ///
    /// Same as [`SweepService::query`].
    pub fn sweep_streaming(
        &self,
        points: &[SweepPoint],
        mut each: impl FnMut(&SweepOutcome),
    ) -> Vec<SweepOutcome> {
        self.pool.map_streaming(
            points.to_vec(),
            |point| {
                let (report, from_cache) = self.query_point(&point);
                SweepOutcome {
                    point,
                    report,
                    from_cache,
                }
            },
            |c: Completion<'_, SweepOutcome>| each(c.result),
        )
    }

    /// Fault-isolated [`SweepService::sweep`]: a point whose simulation
    /// panics (after the pool's bounded retries) is quarantined as an
    /// `Err(SweepError)` in its submission-order slot while every other
    /// point completes normally — one bad point no longer costs the whole
    /// campaign. Cached points are unaffected either way.
    pub fn try_sweep(&self, points: &[SweepPoint]) -> Vec<Result<SweepOutcome, SweepError>> {
        self.pool.try_map(points.to_vec(), |point| {
            let (report, from_cache) = self.query_point(&point);
            SweepOutcome {
                point,
                report,
                from_cache,
            }
        })
    }

    /// The smallest cluster count among `candidates` whose report meets the
    /// latency target (in cycles), together with its report. All candidates
    /// are swept in parallel (and memoized), so follow-up questions about
    /// the same workload are free. Returns `None` when no candidate meets
    /// the target.
    ///
    /// # Panics
    ///
    /// Same as [`SweepService::query`].
    pub fn cheapest_clusters_meeting(
        &self,
        design: DesignKind,
        workload: SweepWorkload,
        mode: SimMode,
        latency_target_cycles: u64,
        candidates: &[u32],
    ) -> Option<(u32, Arc<SimReport>)> {
        let mut sorted: Vec<u32> = candidates.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let points: Vec<SweepPoint> = sorted
            .iter()
            .map(|&clusters| SweepPoint {
                design,
                workload,
                clusters,
                dram_channels: 1,
                mode,
            })
            .collect();
        self.sweep(&points)
            .into_iter()
            .find(|o| o.report.cycles().get() <= latency_target_cycles)
            .map(|o| (o.point.clusters, o.report))
    }
}

impl Default for SweepService {
    fn default() -> Self {
        Self::with_defaults()
    }
}

/// The workspace's conventional disk-cache directory,
/// `<workspace>/target/sweep-cache`.
pub fn workspace_cache_dir() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/sweep-cache"
    ))
}

/// The disk directory the *default* services use, governed by
/// `VIRGO_SWEEP_CACHE`:
///
/// * unset or `on` — [`workspace_cache_dir`] (`target/sweep-cache/`),
/// * `off` or `0` — `None`: the disk layer is disabled,
/// * anything else — treated as an explicit directory path.
///
/// The disk layer **defaults on**: a [`SimKey`] digests the simulator's own
/// source tree (`VIRGO_SOURCE_DIGEST`, computed by `virgo`'s build script)
/// alongside the simulation inputs, so entries written by an older build of
/// the model miss cleanly instead of serving stale reports — the equivalence
/// and fingerprint tests stay honest even under a persistent shared cache.
/// Set `VIRGO_SWEEP_CACHE=off` for cold-cache measurements (or use
/// [`SweepService::in_memory`], as the sweep benches do).
pub fn default_disk_dir() -> Option<PathBuf> {
    match std::env::var("VIRGO_SWEEP_CACHE") {
        Err(_) => Some(workspace_cache_dir()),
        Ok(value) if value.is_empty() || value.eq_ignore_ascii_case("off") || value == "0" => None,
        Ok(value) if value.eq_ignore_ascii_case("on") => Some(workspace_cache_dir()),
        Ok(path) => Some(PathBuf::from(path)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_gemm() -> GemmShape {
        // The smallest shape every design's tiling accepts (the Virgo GEMM
        // uses 128x64x128 thread-block tiles).
        GemmShape {
            m: 128,
            n: 128,
            k: 128,
        }
    }

    fn service() -> SweepService {
        SweepService::new(
            SweepPool::new(2),
            ReportCache::in_memory(64),
            DEFAULT_MAX_CYCLES,
        )
    }

    #[test]
    fn query_is_memoized() {
        let svc = service();
        let a = svc.query(
            DesignKind::Virgo,
            SweepWorkload::Gemm(tiny_gemm()),
            1,
            SimMode::FastForward,
        );
        let b = svc.query(
            DesignKind::Virgo,
            SweepWorkload::Gemm(tiny_gemm()),
            1,
            SimMode::FastForward,
        );
        assert!(Arc::ptr_eq(&a, &b), "second query must be a cache hit");
        let stats = svc.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn sweep_preserves_submission_order_and_marks_cache() {
        let svc = service();
        let points: Vec<SweepPoint> = DesignKind::all()
            .into_iter()
            .map(|d| SweepPoint::gemm(d, tiny_gemm()))
            .collect();
        let first = svc.sweep(&points);
        assert_eq!(first.len(), 4);
        for (outcome, design) in first.iter().zip(DesignKind::all()) {
            assert_eq!(outcome.point.design, design);
            assert!(!outcome.from_cache);
            assert!(outcome.report.cycles().get() > 0);
        }
        let second = svc.sweep(&points);
        assert!(second.iter().all(|o| o.from_cache));
    }

    #[test]
    fn streaming_callback_sees_every_point() {
        let svc = service();
        let points: Vec<SweepPoint> = [1u32, 2]
            .into_iter()
            .map(|n| SweepPoint::gemm(DesignKind::Virgo, tiny_gemm()).with_clusters(n))
            .collect();
        let mut seen = 0;
        svc.sweep_streaming(&points, |outcome| {
            assert!(outcome.report.cycles().get() > 0);
            seen += 1;
        });
        assert_eq!(seen, 2);
    }

    #[test]
    fn cheapest_clusters_meeting_finds_smallest() {
        let svc = service();
        // N=1 cycles for the tiny GEMM; target just under it forces N>=2 on
        // Virgo (which scales), and an absurd target of 1 cycle returns None.
        let n1 = svc
            .query(
                DesignKind::Virgo,
                SweepWorkload::Gemm(tiny_gemm()),
                1,
                SimMode::FastForward,
            )
            .cycles()
            .get();
        let (clusters, report) = svc
            .cheapest_clusters_meeting(
                DesignKind::Virgo,
                SweepWorkload::Gemm(tiny_gemm()),
                SimMode::FastForward,
                n1, // N=1 meets its own latency
                &[4, 1, 2],
            )
            .expect("n=1 meets its own latency");
        assert_eq!(clusters, 1);
        assert_eq!(report.cycles().get(), n1);
        let tighter = svc.cheapest_clusters_meeting(
            DesignKind::Virgo,
            SweepWorkload::Gemm(tiny_gemm()),
            SimMode::FastForward,
            n1 - 1,
            &[1, 2, 4],
        );
        if let Some((clusters, report)) = tighter {
            assert!(clusters > 1, "a tighter target needs a bigger machine");
            assert!(report.cycles().get() < n1);
        }
        assert!(svc
            .cheapest_clusters_meeting(
                DesignKind::Virgo,
                SweepWorkload::Gemm(tiny_gemm()),
                SimMode::FastForward,
                1,
                &[1, 2],
            )
            .is_none());
    }

    #[test]
    fn try_sweep_quarantines_a_panicking_point_and_finishes_the_rest() {
        let svc = service();
        // FlashAttention on a Volta-style design has no paper mapping and
        // panics in kernel generation — a deterministic poison point.
        let attention = AttentionShape {
            batch: 1,
            seq_len: 128,
            head_dim: 64,
            heads: 1,
        };
        let points = vec![
            SweepPoint::gemm(DesignKind::Virgo, tiny_gemm()),
            SweepPoint::flash_attention(DesignKind::VoltaStyle, attention),
            SweepPoint::gemm(DesignKind::AmpereStyle, tiny_gemm()),
        ];
        let out = svc.try_sweep(&points);
        assert_eq!(out.len(), 3);
        assert!(out[0].is_ok());
        assert!(out[2].is_ok(), "points after the poison one must finish");
        let err = out[1].as_ref().unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.attempts, SweepPool::MAX_ATTEMPTS);
    }

    #[test]
    fn dram_channel_points_are_distinct_cache_entries() {
        let svc = service();
        let base = SweepPoint::gemm(DesignKind::Virgo, tiny_gemm()).with_clusters(2);
        let quad = base.with_dram_channels(4);
        let (single_report, _) = svc.query_point(&base);
        let (quad_report, cached) = svc.query_point(&quad);
        assert!(!cached, "a different channel count must not alias in cache");
        assert_eq!(quad_report.dram_channels(), 4);
        assert_eq!(single_report.dram_channels(), 1);
        // The per-channel slices add up to the aggregate interface stats.
        let summed: u64 = quad_report
            .dram_channel_stats()
            .iter()
            .map(|c| c.bytes)
            .sum();
        assert_eq!(summed, quad_report.dram_stats().bytes);
        assert!(format!("{quad}").contains("ch4"));
    }

    #[test]
    fn custom_config_queries_are_memoized_too() {
        let svc = service();
        let config = GpuConfig::virgo();
        let kernel = SweepWorkload::Gemm(tiny_gemm()).build(&config);
        let (a, cached_a) = svc.query_config(&config, &kernel, SimMode::FastForward);
        let (b, cached_b) = svc.query_config(&config, &kernel, SimMode::FastForward);
        assert!(!cached_a);
        assert!(cached_b);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn disk_dir_honors_env_gate() {
        // Not a full env-var test (tests run in parallel; mutating the
        // process environment races); pin the conventional path shape and
        // the on-by-default behavior for the usual unset case.
        assert!(workspace_cache_dir().ends_with("target/sweep-cache"));
        match std::env::var("VIRGO_SWEEP_CACHE") {
            Err(_) => assert_eq!(
                default_disk_dir(),
                Some(workspace_cache_dir()),
                "disk layer must default on (SimKey digests the simulator source)"
            ),
            Ok(v) if v.is_empty() || v.eq_ignore_ascii_case("off") || v == "0" => {
                assert_eq!(default_disk_dir(), None);
            }
            Ok(_) => assert!(default_disk_dir().is_some()),
        }
    }
}
