//! The storage API behind the sweep service: a [`ReportStore`] trait with
//! memory, disk, remote and tiered implementations, plus the typed
//! [`StoreConfig`] that replaces scattered `std::env::var` reads.
//!
//! Every sweep consumer — benches, examples, integration tests, `virgo-serve`
//! replays — routes report storage through this one interface:
//!
//! * [`MemoryStore`] — `Arc<SimReport>` map with FIFO eviction; the
//!   process-local working set.
//! * [`DiskStore`] — one validated snapshot envelope per key (over
//!   `virgo_store::EntryDir`): atomic temp-file + rename writes and
//!   corrupt-entry quarantine, shared across processes on one host.
//! * [`RemoteStore`] — a `virgo-store` server on the network, shared across
//!   hosts. Failure policy lives here: one reconnect retry per operation,
//!   then after [`RemoteStore::OFFLINE_AFTER`] consecutive failures the
//!   store is marked offline and every subsequent operation degrades to a
//!   local miss/no-op — each one counted in [`StoreStats::unreachable`] —
//!   so **a dead store can never fail a sweep**, only slow its first run.
//! * [`TieredStore`] — memory → disk → remote: read-through with promotion
//!   into the faster tiers, write-through to every tier.
//!
//! Stores are deliberately *policy over transport*: the wire client in
//! `virgo-store` reports every failure and retries nothing, and this module
//! decides what failures mean for a sweep.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use virgo::{SimKey, SimReport};
use virgo_store::{ClientConfig, EntryDir, Loaded, StoreClient};

/// Which level of the storage hierarchy an implementation (or a hit) lives
/// at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreTier {
    /// Process-local memory.
    Memory,
    /// Host-local disk directory.
    Disk,
    /// Networked `virgo-store` server.
    Remote,
    /// A composite of the above ([`TieredStore`]); never appears on a hit.
    Tiered,
}

impl std::fmt::Display for StoreTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StoreTier::Memory => "memory",
            StoreTier::Disk => "disk",
            StoreTier::Remote => "remote",
            StoreTier::Tiered => "tiered",
        })
    }
}

/// Monotonic per-store counters, surfaced in sweep summaries and bench
/// reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Loads answered by this store.
    pub hits: u64,
    /// Loads this store could not answer.
    pub misses: u64,
    /// Reports accepted by a save.
    pub puts: u64,
    /// Entries dropped to stay within a volatile capacity (memory tier).
    pub evictions: u64,
    /// Entries rejected as corrupt/stale/misfiled (disk and remote tiers).
    pub rejects: u64,
    /// The subset of `rejects` preserved in a quarantine directory.
    pub quarantined: u64,
    /// Operations skipped or failed because the remote store was
    /// unreachable (each op is charged exactly once, so the total is a
    /// deterministic function of the op count).
    pub unreachable: u64,
    /// Envelope bytes read from disk or the wire.
    pub bytes_read: u64,
    /// Envelope bytes written to disk or the wire.
    pub bytes_written: u64,
    /// Wall-clock microseconds spent in loads.
    pub read_micros: u64,
    /// Wall-clock microseconds spent in saves.
    pub write_micros: u64,
}

impl StoreStats {
    /// Element-wise sum (used by [`TieredStore`] aggregation).
    #[must_use]
    pub fn merged(self, other: StoreStats) -> StoreStats {
        StoreStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            puts: self.puts + other.puts,
            evictions: self.evictions + other.evictions,
            rejects: self.rejects + other.rejects,
            quarantined: self.quarantined + other.quarantined,
            unreachable: self.unreachable + other.unreachable,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            read_micros: self.read_micros + other.read_micros,
            write_micros: self.write_micros + other.write_micros,
        }
    }
}

/// A successful load: the report and the tier that answered.
#[derive(Debug, Clone)]
pub struct StoreHit {
    /// The stored report.
    pub report: Arc<SimReport>,
    /// Which tier served it.
    pub tier: StoreTier,
}

/// A place reports live. Implementations must be infallible from the
/// caller's perspective: a load that cannot be answered is a miss, a save
/// that cannot be persisted is dropped (and counted), never an error — the
/// sweep itself must not depend on storage health.
pub trait ReportStore: Send + Sync + std::fmt::Debug {
    /// The tier this store implements.
    fn tier(&self) -> StoreTier;

    /// Looks `key` up; `None` is a miss.
    fn load(&self, key: SimKey) -> Option<StoreHit>;

    /// Persists `report` under `key` (best-effort).
    fn save(&self, key: SimKey, report: &Arc<SimReport>);

    /// Aggregate counters (summed over tiers for composites).
    fn stats(&self) -> StoreStats;

    /// Counters for one tier of the hierarchy (zero when this store does
    /// not contain that tier).
    fn stats_for(&self, tier: StoreTier) -> StoreStats {
        if tier == self.tier() {
            self.stats()
        } else {
            StoreStats::default()
        }
    }

    /// Drops volatile (in-memory) entries; persistent tiers are untouched.
    fn clear_volatile(&self) {}

    /// Number of entries held in volatile storage.
    fn volatile_len(&self) -> usize {
        0
    }

    /// Resets every counter to zero.
    fn reset_stats(&self);
}

// ---------------------------------------------------------------------------
// Memory
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct MemoryInner {
    map: HashMap<SimKey, Arc<SimReport>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<SimKey>,
    stats: StoreStats,
}

/// The in-memory tier: an `Arc<SimReport>` map with FIFO eviction beyond a
/// fixed capacity.
#[derive(Debug)]
pub struct MemoryStore {
    inner: Mutex<MemoryInner>,
    capacity: usize,
}

impl MemoryStore {
    /// Creates a store holding at most `capacity` reports (minimum 1).
    pub fn new(capacity: usize) -> Self {
        MemoryStore {
            inner: Mutex::new(MemoryInner::default()),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemoryInner> {
        self.inner.lock().expect("memory store lock")
    }
}

impl ReportStore for MemoryStore {
    fn tier(&self) -> StoreTier {
        StoreTier::Memory
    }

    fn load(&self, key: SimKey) -> Option<StoreHit> {
        let mut inner = self.lock();
        match inner.map.get(&key).cloned() {
            Some(report) => {
                inner.stats.hits += 1;
                Some(StoreHit {
                    report,
                    tier: StoreTier::Memory,
                })
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    fn save(&self, key: SimKey, report: &Arc<SimReport>) {
        let mut inner = self.lock();
        inner.stats.puts += 1;
        if inner.map.insert(key, Arc::clone(report)).is_none() {
            inner.order.push_back(key);
        }
        while inner.map.len() > self.capacity {
            let Some(victim) = inner.order.pop_front() else {
                break;
            };
            if inner.map.remove(&victim).is_some() {
                inner.stats.evictions += 1;
            }
        }
    }

    fn stats(&self) -> StoreStats {
        self.lock().stats
    }

    fn clear_volatile(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.order.clear();
    }

    fn volatile_len(&self) -> usize {
        self.lock().map.len()
    }

    fn reset_stats(&self) {
        self.lock().stats = StoreStats::default();
    }
}

// ---------------------------------------------------------------------------
// Disk
// ---------------------------------------------------------------------------

/// The host-local disk tier: one validated envelope per key over
/// [`virgo_store::EntryDir`] (atomic writes, corrupt-entry quarantine).
#[derive(Debug)]
pub struct DiskStore {
    entries: EntryDir,
    stats: Mutex<StoreStats>,
}

impl DiskStore {
    /// Creates a disk store rooted at `dir` (created lazily on first write),
    /// quarantining rejects under `dir/quarantine/`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self::with_entries(EntryDir::new(dir))
    }

    /// Creates a disk store over an explicit entry directory (e.g. with a
    /// custom quarantine location).
    pub fn with_entries(entries: EntryDir) -> Self {
        DiskStore {
            entries,
            stats: Mutex::new(StoreStats::default()),
        }
    }

    /// The entry directory.
    pub fn entries(&self) -> &EntryDir {
        &self.entries
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StoreStats> {
        self.stats.lock().expect("disk store stats lock")
    }
}

impl ReportStore for DiskStore {
    fn tier(&self) -> StoreTier {
        StoreTier::Disk
    }

    fn load(&self, key: SimKey) -> Option<StoreHit> {
        let started = Instant::now();
        let loaded = self.entries.load(&key.to_hex());
        let micros = started.elapsed().as_micros() as u64;
        let mut stats = self.lock();
        stats.read_micros += micros;
        match loaded {
            Loaded::Valid(text, report) => {
                stats.hits += 1;
                stats.bytes_read += text.len() as u64;
                Some(StoreHit {
                    report: Arc::new(report),
                    tier: StoreTier::Disk,
                })
            }
            Loaded::Absent => {
                stats.misses += 1;
                None
            }
            Loaded::Quarantined { preserved } => {
                stats.misses += 1;
                stats.rejects += 1;
                if preserved {
                    stats.quarantined += 1;
                }
                None
            }
        }
    }

    fn save(&self, key: SimKey, report: &Arc<SimReport>) {
        let hex = key.to_hex();
        let envelope = report.to_cache_json(&hex);
        let started = Instant::now();
        // Disk-layer failures (read-only FS, full disk) degrade to the
        // faster tiers; they never fail the simulation itself.
        let written = self.entries.store_unchecked(&hex, &envelope).is_ok();
        let micros = started.elapsed().as_micros() as u64;
        let mut stats = self.lock();
        stats.write_micros += micros;
        if written {
            stats.puts += 1;
            stats.bytes_written += envelope.len() as u64;
        }
    }

    fn stats(&self) -> StoreStats {
        *self.lock()
    }

    fn reset_stats(&self) {
        *self.lock() = StoreStats::default();
    }
}

// ---------------------------------------------------------------------------
// Remote
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct RemoteState {
    client: Option<StoreClient>,
    consecutive_failures: u32,
    offline: bool,
}

/// The networked tier: a `virgo-store` server, with the retry-then-degrade
/// policy that keeps a dead store from ever failing a sweep.
#[derive(Debug)]
pub struct RemoteStore {
    addr: String,
    config: ClientConfig,
    state: Mutex<RemoteState>,
    stats: Mutex<StoreStats>,
}

impl RemoteStore {
    /// Consecutive failed operations after which the store is declared
    /// offline and every later operation short-circuits to a counted local
    /// miss/no-op (no more connection attempts, no more timeouts).
    pub const OFFLINE_AFTER: u32 = 3;

    /// Creates a remote store for the server at `addr` (e.g.
    /// `"127.0.0.1:7171"`) with default timeouts. No connection is made
    /// until the first operation.
    pub fn new(addr: impl Into<String>) -> Self {
        Self::with_config(addr, ClientConfig::default())
    }

    /// Creates a remote store with explicit timeouts.
    pub fn with_config(addr: impl Into<String>, config: ClientConfig) -> Self {
        RemoteStore {
            addr: addr.into(),
            config,
            state: Mutex::new(RemoteState::default()),
            stats: Mutex::new(StoreStats::default()),
        }
    }

    /// The server address this store targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// True once the store has been declared offline.
    pub fn is_offline(&self) -> bool {
        self.state.lock().expect("remote store lock").offline
    }

    fn lock_stats(&self) -> std::sync::MutexGuard<'_, StoreStats> {
        self.stats.lock().expect("remote store stats lock")
    }

    /// Runs `op` against a connected client with the degrade policy: skip
    /// (and charge `unreachable`) when offline; connect on demand; retry
    /// exactly once on a transport error (the connection may simply have
    /// idled out); declare the store offline after
    /// [`OFFLINE_AFTER`](RemoteStore::OFFLINE_AFTER) consecutive failures.
    /// Every operation that does not reach the server is charged to
    /// `unreachable` exactly once.
    fn with_client<T>(&self, op: impl Fn(&mut StoreClient) -> std::io::Result<T>) -> Option<T> {
        let mut state = self.state.lock().expect("remote store lock");
        if state.offline {
            self.lock_stats().unreachable += 1;
            return None;
        }
        for _attempt in 0..2 {
            if state.client.is_none() {
                match StoreClient::connect_with(&self.addr, self.config) {
                    Ok(client) => state.client = Some(client),
                    Err(_) => break,
                }
            }
            let client = state.client.as_mut().expect("client just ensured");
            match op(client) {
                Ok(value) => {
                    state.consecutive_failures = 0;
                    return Some(value);
                }
                Err(_) => {
                    // The connection is suspect (idled out, server bounced,
                    // frame desync): drop it and retry once with a fresh one.
                    state.client = None;
                }
            }
        }
        state.client = None;
        state.consecutive_failures += 1;
        if state.consecutive_failures >= Self::OFFLINE_AFTER {
            state.offline = true;
        }
        self.lock_stats().unreachable += 1;
        None
    }
}

impl ReportStore for RemoteStore {
    fn tier(&self) -> StoreTier {
        StoreTier::Remote
    }

    fn load(&self, key: SimKey) -> Option<StoreHit> {
        let hex = key.to_hex();
        let started = Instant::now();
        let fetched = self.with_client(|client| client.get(&hex));
        let micros = started.elapsed().as_micros() as u64;
        let mut stats = self.lock_stats();
        stats.read_micros += micros;
        let text = match fetched {
            Some(Some(text)) => text,
            Some(None) => {
                stats.misses += 1;
                return None;
            }
            None => return None, // unreachable, already charged
        };
        stats.bytes_read += text.len() as u64;
        // Never trust the wire: re-validate the envelope against the key it
        // was requested under before serving it.
        match SimReport::from_cache_json(&text, &hex) {
            Ok(report) => {
                stats.hits += 1;
                Some(StoreHit {
                    report: Arc::new(report),
                    tier: StoreTier::Remote,
                })
            }
            Err(_) => {
                stats.misses += 1;
                stats.rejects += 1;
                None
            }
        }
    }

    fn save(&self, key: SimKey, report: &Arc<SimReport>) {
        let hex = key.to_hex();
        let envelope = report.to_cache_json(&hex);
        let started = Instant::now();
        let accepted = self.with_client(|client| client.put(&hex, &envelope));
        let micros = started.elapsed().as_micros() as u64;
        let mut stats = self.lock_stats();
        stats.write_micros += micros;
        match accepted {
            Some(true) => {
                stats.puts += 1;
                stats.bytes_written += envelope.len() as u64;
            }
            Some(false) => stats.rejects += 1, // the server refused it
            None => {}                         // unreachable, already charged
        }
    }

    fn stats(&self) -> StoreStats {
        *self.lock_stats()
    }

    fn reset_stats(&self) {
        *self.lock_stats() = StoreStats::default();
        let mut state = self.state.lock().expect("remote store lock");
        // Give a previously dead store a fresh chance: stats resets mark
        // measurement-phase boundaries (benches), not sweep-internal points.
        state.consecutive_failures = 0;
        state.offline = false;
    }
}

// ---------------------------------------------------------------------------
// Tiered
// ---------------------------------------------------------------------------

/// Memory → disk → remote composition: read-through with promotion into
/// every faster tier, write-through to every tier.
#[derive(Debug)]
pub struct TieredStore {
    tiers: Vec<Box<dyn ReportStore>>,
}

impl TieredStore {
    /// Composes `tiers` in lookup order (fastest first).
    ///
    /// # Panics
    ///
    /// Panics when `tiers` is empty.
    pub fn new(tiers: Vec<Box<dyn ReportStore>>) -> Self {
        assert!(!tiers.is_empty(), "a tiered store needs at least one tier");
        TieredStore { tiers }
    }

    /// The tiers, fastest first.
    pub fn tiers(&self) -> &[Box<dyn ReportStore>] {
        &self.tiers
    }
}

impl ReportStore for TieredStore {
    fn tier(&self) -> StoreTier {
        StoreTier::Tiered
    }

    fn load(&self, key: SimKey) -> Option<StoreHit> {
        for (depth, tier) in self.tiers.iter().enumerate() {
            if let Some(hit) = tier.load(key) {
                // Promote into every faster tier so the next lookup stops
                // earlier.
                for faster in &self.tiers[..depth] {
                    faster.save(key, &hit.report);
                }
                return Some(hit);
            }
        }
        None
    }

    fn save(&self, key: SimKey, report: &Arc<SimReport>) {
        for tier in &self.tiers {
            tier.save(key, report);
        }
    }

    fn stats(&self) -> StoreStats {
        self.tiers
            .iter()
            .fold(StoreStats::default(), |acc, t| acc.merged(t.stats()))
    }

    fn stats_for(&self, tier: StoreTier) -> StoreStats {
        self.tiers.iter().fold(StoreStats::default(), |acc, t| {
            acc.merged(t.stats_for(tier))
        })
    }

    fn clear_volatile(&self) {
        for tier in &self.tiers {
            tier.clear_volatile();
        }
    }

    fn volatile_len(&self) -> usize {
        self.tiers.iter().map(|t| t.volatile_len()).sum()
    }

    fn reset_stats(&self) {
        for tier in &self.tiers {
            tier.reset_stats();
        }
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// The workspace's conventional disk-cache directory,
/// `<workspace>/target/sweep-cache`.
pub fn workspace_cache_dir() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/sweep-cache"
    ))
}

/// Typed storage configuration: every environment knob parsed in one place.
///
/// | variable | meaning |
/// |---|---|
/// | `VIRGO_SWEEP_CACHE` | disk tier: unset/`on` → `target/sweep-cache/`, `off`/`0`/empty → disabled, else a directory path |
/// | `VIRGO_SWEEP_STORE` | remote tier: unset/`off`/`0`/empty → disabled, else a `host:port` server address |
/// | `VIRGO_SWEEP_QUARANTINE` | quarantine directory override (default `<disk dir>/quarantine/`) |
///
/// The disk tier **defaults on**: a [`SimKey`] digests the simulator's own
/// source tree (`VIRGO_SOURCE_DIGEST`, computed by `virgo`'s build script)
/// alongside the simulation inputs, so entries written by an older build of
/// the model miss cleanly instead of serving stale reports — the equivalence
/// and fingerprint tests stay honest even under a persistent shared cache.
/// Set `VIRGO_SWEEP_CACHE=off` for cold-cache measurements (or use
/// `SweepService::in_memory`, as the sweep benches do).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// In-memory tier capacity (reports).
    pub memory_capacity: usize,
    /// Disk tier directory, `None` to disable.
    pub disk_dir: Option<PathBuf>,
    /// Remote tier server address (`host:port`), `None` to disable.
    pub remote_addr: Option<String>,
    /// Quarantine directory override for the disk tier.
    pub quarantine_dir: Option<PathBuf>,
}

impl StoreConfig {
    /// Default in-memory capacity: comfortably holds the full paper grid
    /// (4 designs × 3 shapes × 4 cluster counts × 2 modes) many times over.
    pub const DEFAULT_MEMORY_CAPACITY: usize = 1024;

    /// Memory-only configuration.
    pub fn in_memory(capacity: usize) -> Self {
        StoreConfig {
            memory_capacity: capacity,
            disk_dir: None,
            remote_addr: None,
            quarantine_dir: None,
        }
    }

    /// Reads the process environment — the only place these variables are
    /// consulted.
    pub fn from_env() -> Self {
        let get = |name: &str| std::env::var(name).ok();
        Self::parse(
            get("VIRGO_SWEEP_CACHE").as_deref(),
            get("VIRGO_SWEEP_STORE").as_deref(),
            get("VIRGO_SWEEP_QUARANTINE").as_deref(),
        )
    }

    /// Pure parse of the three knobs (unit-testable without touching the
    /// process environment, which would race under parallel tests).
    pub fn parse(cache: Option<&str>, store: Option<&str>, quarantine: Option<&str>) -> Self {
        let off = |v: &str| v.is_empty() || v.eq_ignore_ascii_case("off") || v == "0";
        let disk_dir = match cache {
            None => Some(workspace_cache_dir()),
            Some(v) if off(v) => None,
            Some(v) if v.eq_ignore_ascii_case("on") => Some(workspace_cache_dir()),
            Some(path) => Some(PathBuf::from(path)),
        };
        let remote_addr = match store {
            None => None,
            Some(v) if off(v) => None,
            Some(addr) => Some(addr.to_string()),
        };
        StoreConfig {
            memory_capacity: Self::DEFAULT_MEMORY_CAPACITY,
            disk_dir,
            remote_addr,
            quarantine_dir: quarantine.filter(|v| !v.is_empty()).map(PathBuf::from),
        }
    }

    /// Overrides the memory capacity.
    #[must_use]
    pub fn with_memory_capacity(mut self, capacity: usize) -> Self {
        self.memory_capacity = capacity;
        self
    }

    /// Sets (or disables) the disk tier.
    #[must_use]
    pub fn with_disk_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.disk_dir = dir;
        self
    }

    /// Sets (or disables) the remote tier.
    #[must_use]
    pub fn with_remote_addr(mut self, addr: Option<String>) -> Self {
        self.remote_addr = addr;
        self
    }

    /// Builds the store this configuration describes: the memory tier,
    /// then disk and remote tiers when configured (a single tier is
    /// returned unwrapped).
    pub fn build_store(&self) -> Box<dyn ReportStore> {
        let mut tiers: Vec<Box<dyn ReportStore>> =
            vec![Box::new(MemoryStore::new(self.memory_capacity))];
        if let Some(dir) = &self.disk_dir {
            let mut entries = EntryDir::new(dir);
            if let Some(quarantine) = &self.quarantine_dir {
                entries = entries.with_quarantine(quarantine);
            }
            tiers.push(Box::new(DiskStore::with_entries(entries)));
        }
        if let Some(addr) = &self.remote_addr {
            tiers.push(Box::new(RemoteStore::new(addr.clone())));
        }
        if tiers.len() == 1 {
            tiers.pop().expect("one tier")
        } else {
            Box::new(TieredStore::new(tiers))
        }
    }
}

impl Default for StoreConfig {
    /// The environment-governed default ([`StoreConfig::from_env`]).
    fn default() -> Self {
        Self::from_env()
    }
}

/// The disk directory the *default* services use, governed by
/// `VIRGO_SWEEP_CACHE` (see [`StoreConfig`] for the full table and the
/// on-by-default soundness argument).
pub fn default_disk_dir() -> Option<PathBuf> {
    StoreConfig::from_env().disk_dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use virgo::{Gpu, GpuConfig, SimMode};
    use virgo_isa::{DataType, Kernel, KernelInfo, ProgramBuilder, WarpAssignment, WarpOp};

    fn tiny(ops: u32) -> (SimKey, Arc<SimReport>) {
        let mut b = ProgramBuilder::new();
        b.op_n(
            ops,
            WarpOp::Alu {
                rf_reads: 1,
                rf_writes: 1,
            },
        );
        let kernel = Kernel::new(
            KernelInfo::new("store-unit-test", 0, DataType::Fp16),
            vec![WarpAssignment::new(0, 0, StdArc::new(b.build()))],
        );
        let config = GpuConfig::virgo();
        let key = SimKey::digest(&config, &kernel, 100_000, SimMode::FastForward);
        let report = Gpu::new(config).run(&kernel, 100_000).unwrap();
        (key, Arc::new(report))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "virgo-store-unit-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_store_fifo_evicts_and_counts() {
        let store = MemoryStore::new(2);
        let (key, report) = tiny(1);
        assert!(store.load(key).is_none());
        store.save(key, &report);
        let hit = store.load(key).expect("stored entry must hit");
        assert_eq!(hit.tier, StoreTier::Memory);
        assert!(Arc::ptr_eq(&hit.report, &report));
        // Two more distinct keys evict the first (FIFO).
        for ops in [2u32, 3] {
            let (k, r) = tiny(ops);
            store.save(k, &r);
        }
        assert!(store.load(key).is_none());
        let stats = store.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.puts, 3);
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert_eq!(store.volatile_len(), 2);
        store.clear_volatile();
        assert_eq!(store.volatile_len(), 0);
    }

    #[test]
    fn disk_store_roundtrips_and_quarantines() {
        let dir = temp_dir("disk");
        let store = DiskStore::new(&dir);
        let (key, report) = tiny(4);
        assert!(store.load(key).is_none());
        store.save(key, &report);
        let hit = store.load(key).expect("saved entry must hit");
        assert_eq!(hit.tier, StoreTier::Disk);
        assert_eq!(
            format!("{:?}", *hit.report),
            format!("{:?}", *report),
            "disk round-trip must be bit-identical"
        );
        // Corrupt the entry; next load must quarantine and miss.
        let path = store.entries().entry_path(&key.to_hex());
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.truncate(text.len() / 2);
        std::fs::write(&path, text).unwrap();
        assert!(store.load(key).is_none());
        let stats = store.stats();
        assert_eq!((stats.rejects, stats.quarantined), (1, 1));
        assert!(stats.bytes_written > 0);
        assert!(stats.bytes_read > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remote_store_against_dead_address_degrades_deterministically() {
        // Port 9 (discard) on localhost is refused immediately.
        let store = RemoteStore::new("127.0.0.1:9");
        let (key, report) = tiny(2);
        let ops = 5;
        for _ in 0..ops {
            assert!(store.load(key).is_none());
        }
        store.save(key, &report);
        let stats = store.stats();
        assert_eq!(
            stats.unreachable,
            ops + 1,
            "every op against a dead store is charged exactly once"
        );
        assert!(store.is_offline(), "the store must be declared offline");
        assert_eq!(stats.hits + stats.misses + stats.puts, 0);
        // A stats reset re-arms the store for a fresh measurement phase.
        store.reset_stats();
        assert!(!store.is_offline());
        assert_eq!(store.stats(), StoreStats::default());
    }

    #[test]
    fn tiered_store_promotes_hits_into_faster_tiers() {
        let dir = temp_dir("tiered");
        let tiered = TieredStore::new(vec![
            Box::new(MemoryStore::new(8)),
            Box::new(DiskStore::new(&dir)),
        ]);
        let (key, report) = tiny(5);
        tiered.save(key, &report); // write-through: memory + disk
        assert_eq!(tiered.volatile_len(), 1);
        tiered.clear_volatile();
        assert_eq!(tiered.volatile_len(), 0);
        let hit = tiered.load(key).expect("disk tier must answer");
        assert_eq!(hit.tier, StoreTier::Disk);
        assert_eq!(
            tiered.volatile_len(),
            1,
            "the hit must be promoted into memory"
        );
        let again = tiered.load(key).expect("promoted entry must hit memory");
        assert_eq!(again.tier, StoreTier::Memory);
        // Per-tier stats stay separable through the composite.
        assert_eq!(tiered.stats_for(StoreTier::Memory).hits, 1);
        assert_eq!(tiered.stats_for(StoreTier::Disk).hits, 1);
        assert_eq!(tiered.stats_for(StoreTier::Remote), StoreStats::default());
        assert_eq!(tiered.stats().hits, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_config_parse_covers_every_knob() {
        // Defaults: disk on (conventional dir), no remote, no quarantine.
        let config = StoreConfig::parse(None, None, None);
        assert_eq!(config.disk_dir, Some(workspace_cache_dir()));
        assert_eq!(config.remote_addr, None);
        assert_eq!(config.quarantine_dir, None);
        assert_eq!(config.memory_capacity, StoreConfig::DEFAULT_MEMORY_CAPACITY);

        // Disk off, in all its spellings.
        for off in ["off", "OFF", "0", ""] {
            assert_eq!(StoreConfig::parse(Some(off), None, None).disk_dir, None);
        }
        // Disk explicitly on, or an explicit path.
        assert_eq!(
            StoreConfig::parse(Some("on"), None, None).disk_dir,
            Some(workspace_cache_dir())
        );
        assert_eq!(
            StoreConfig::parse(Some("/tmp/x"), None, None).disk_dir,
            Some(PathBuf::from("/tmp/x"))
        );

        // Remote: off spellings and an address.
        for off in ["off", "0", ""] {
            assert_eq!(StoreConfig::parse(None, Some(off), None).remote_addr, None);
        }
        assert_eq!(
            StoreConfig::parse(None, Some("10.0.0.7:7171"), None).remote_addr,
            Some("10.0.0.7:7171".to_string())
        );

        // Quarantine override.
        assert_eq!(
            StoreConfig::parse(None, None, Some("/tmp/q")).quarantine_dir,
            Some(PathBuf::from("/tmp/q"))
        );
        assert_eq!(
            StoreConfig::parse(None, None, Some("")).quarantine_dir,
            None
        );
    }

    #[test]
    fn store_config_builds_the_tiers_it_describes() {
        let memory_only = StoreConfig::in_memory(4).build_store();
        assert_eq!(memory_only.tier(), StoreTier::Memory);

        let dir = temp_dir("config-build");
        let with_disk = StoreConfig::in_memory(4)
            .with_disk_dir(Some(dir.clone()))
            .build_store();
        assert_eq!(with_disk.tier(), StoreTier::Tiered);

        let full = StoreConfig::in_memory(4)
            .with_disk_dir(Some(dir.clone()))
            .with_remote_addr(Some("127.0.0.1:9".to_string()))
            .build_store();
        assert_eq!(full.tier(), StoreTier::Tiered);
        // The composite exposes all three tiers through stats_for: exercise
        // one op and check the remote tier was charged.
        let (key, _) = tiny(6);
        assert!(full.load(key).is_none());
        assert_eq!(full.stats_for(StoreTier::Memory).misses, 1);
        assert_eq!(full.stats_for(StoreTier::Disk).misses, 1);
        assert_eq!(full.stats_for(StoreTier::Remote).unreachable, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
