//! The Hopper-style operand-decoupled tensor core (Section 5.1.3).
//!
//! The unit extends the tightly-coupled design into a decoupled
//! access/execute architecture (Figure 6 of the paper): an *access frontend*
//! issues a statically-determined sequence of read requests for the operand
//! tiles held in shared memory, and an *execute backend* drains the returned
//! data through operand buffers into the dot-product units. Because the
//! access frontend can run ahead, shared-memory latency is overlapped with
//! compute. Accumulator tiles still live in the warp's register file and are
//! read and written back by the unit, which is what keeps the register
//! pressure (and the associated issue-stage energy) non-trivial for this
//! design point.

use virgo_isa::WgmmaOp;
use virgo_mem::SharedMemory;
use virgo_sim::{BoundedQueue, Cycle, NextActivity, StableHash, StableHasher};

/// Configuration of one operand-decoupled tensor core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecoupledConfig {
    /// FP16 multiply-accumulates per cycle (64 in Table 2, limited by the
    /// shared-memory bandwidth available to the unit).
    pub macs_per_cycle: u32,
    /// Width of each shared-memory read issued by the access frontend, in
    /// bytes.
    pub smem_read_bytes: u64,
    /// Depth of the asynchronous operation queue (`wgmma` group size).
    pub queue_depth: usize,
}

impl StableHash for DecoupledConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(u64::from(self.macs_per_cycle));
        h.write_u64(self.smem_read_bytes);
        h.write_u64(self.queue_depth as u64);
    }
}

impl Default for DecoupledConfig {
    fn default() -> Self {
        DecoupledConfig {
            macs_per_cycle: 64,
            smem_read_bytes: 32,
            queue_depth: 4,
        }
    }
}

/// Event counters for one operand-decoupled unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecoupledStats {
    /// `wgmma` operations completed.
    pub ops: u64,
    /// Multiply-accumulate operations performed.
    pub macs: u64,
    /// 32-bit words staged through the operand buffers.
    pub operand_buffer_words: u64,
    /// 32-bit words staged through the result buffer.
    pub result_buffer_words: u64,
    /// Register-file reads performed by the unit for accumulator input
    /// (charged to the owning core's register file).
    pub rf_accum_reads: u64,
    /// Register-file writes performed by the unit for accumulator output.
    pub rf_accum_writes: u64,
    /// Control/sequencing events (address generation, FSM steps).
    pub control_events: u64,
    /// Cycles the execute backend was busy.
    pub busy_cycles: u64,
}

/// Progress state of the operation currently in the unit.
#[derive(Debug, Clone, Copy)]
struct ActiveOp {
    op: WgmmaOp,
    /// Cycle at which the access frontend will have delivered all operands.
    operands_ready: Cycle,
    /// Cycle at which the execute backend finishes, once started.
    done: Option<Cycle>,
}

/// One Hopper-style operand-decoupled tensor core instance.
///
/// The owning cluster calls [`OperandDecoupledUnit::tick`] once per cycle,
/// passing the shared memory so the access frontend can issue its reads.
#[derive(Debug, Clone)]
pub struct OperandDecoupledUnit {
    config: DecoupledConfig,
    queue: BoundedQueue<WgmmaOp>,
    active: Option<ActiveOp>,
    stats: DecoupledStats,
}

impl OperandDecoupledUnit {
    /// Creates an idle unit.
    ///
    /// # Panics
    ///
    /// Panics if `macs_per_cycle` or `smem_read_bytes` is zero.
    pub fn new(config: DecoupledConfig) -> Self {
        assert!(config.macs_per_cycle > 0, "unit needs at least one MAC");
        assert!(config.smem_read_bytes > 0, "read width must be non-zero");
        OperandDecoupledUnit {
            queue: BoundedQueue::new(config.queue_depth),
            config,
            active: None,
            stats: DecoupledStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DecoupledConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DecoupledStats {
        self.stats
    }

    /// Number of operations accepted but not yet completed.
    pub fn pending(&self) -> u32 {
        (self.queue.len() + usize::from(self.active.is_some())) as u32
    }

    /// Attempts to enqueue an asynchronous operation. `exec_count` is the
    /// issuing instruction's execution count, used to evaluate the tile
    /// addresses.
    ///
    /// Returns `false` when the operation queue is full.
    pub fn try_enqueue(&mut self, op: &WgmmaOp, exec_count: u64) -> bool {
        // Resolve the double-buffered addresses now, when the instruction
        // issues, exactly as the hardware would latch them into the command
        // registers.
        let resolved = WgmmaOp {
            a: virgo_isa::AddrExpr::fixed(op.a.eval(exec_count)),
            b: virgo_isa::AddrExpr::fixed(op.b.eval(exec_count)),
            ..*op
        };
        self.queue.push(resolved).is_ok()
    }

    /// Advances the unit by one cycle, issuing shared-memory reads for the
    /// operation at the head of the queue and retiring the active operation
    /// when its compute finishes. Returns the number of operations that
    /// completed this cycle.
    pub fn tick(&mut self, now: Cycle, smem: &mut SharedMemory) -> u32 {
        // Start the next operation: the access frontend issues the whole
        // statically-known read sequence, whose completion time the banked
        // shared-memory model computes (this is where it runs ahead of the
        // execute backend).
        if self.active.is_none() {
            if let Some(op) = self.queue.pop() {
                let operands_ready = self.fetch_operands(now, &op, smem);
                self.active = Some(ActiveOp {
                    op,
                    operands_ready,
                    done: None,
                });
            }
        }

        let Some(mut active) = self.active else {
            return 0;
        };

        // Launch the execute backend once operands have arrived.
        if active.done.is_none() && now >= active.operands_ready {
            let compute_cycles = active
                .op
                .mac_ops()
                .div_ceil(u64::from(self.config.macs_per_cycle))
                .max(1);
            active.done = Some(now.plus(compute_cycles));
            self.stats.busy_cycles += compute_cycles;
        }

        // Retire when finished.
        let mut completed = 0;
        if let Some(done) = active.done {
            if now >= done {
                self.retire(&active.op);
                completed = 1;
                self.active = None;
                return completed;
            }
        }
        self.active = Some(active);
        completed
    }

    /// Issues the operand reads of `op` to the shared memory and returns the
    /// cycle at which the last word arrives.
    fn fetch_operands(&mut self, now: Cycle, op: &WgmmaOp, smem: &mut SharedMemory) -> Cycle {
        let a_bytes = u64::from(op.m) * u64::from(op.k) * u64::from(op.dtype.bytes());
        let b_bytes = u64::from(op.k) * u64::from(op.n) * u64::from(op.dtype.bytes());
        let mut ready = now;
        for (base, bytes) in [(op.a.eval(0), a_bytes), (op.b.eval(0), b_bytes)] {
            let mut offset = 0;
            while offset < bytes {
                let chunk = (bytes - offset).min(self.config.smem_read_bytes);
                // The access frontend issues its statically-known request
                // sequence back-to-back; the banked shared memory serializes
                // them on bank occupancy, so the SRAM latency is paid once,
                // not once per request.
                let done = smem.access_wide(now, base + offset, chunk, false).done;
                ready = ready.max(done);
                offset += chunk;
            }
        }
        self.stats.operand_buffer_words += (a_bytes + b_bytes).div_ceil(4);
        self.stats.control_events += (a_bytes + b_bytes).div_ceil(self.config.smem_read_bytes);
        ready
    }

    /// Records the completion of one operation.
    fn retire(&mut self, op: &WgmmaOp) {
        self.stats.ops += 1;
        self.stats.macs += op.mac_ops();
        let accum_words = op.accumulator_words();
        self.stats.result_buffer_words += accum_words;
        // The accumulator tile is read from and written back to the warp's
        // register file (Section 5.1.3).
        self.stats.rf_accum_reads += accum_words;
        self.stats.rf_accum_writes += accum_words;
        self.stats.control_events += 1;
    }
}

impl NextActivity for OperandDecoupledUnit {
    /// Between its access/execute milestones the unit's tick is a no-op: all
    /// operand reads are issued when an operation starts, and the backend
    /// state only changes when the operands arrive (`operands_ready`) and
    /// when the compute finishes (`done`). Those milestones — plus `now`
    /// itself when a queued operation is waiting to start — are the unit's
    /// next-activity events.
    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        match &self.active {
            Some(active) => match active.done {
                Some(done) => Some(done.max(now)),
                None => Some(active.operands_ready.max(now)),
            },
            None if !self.queue.is_empty() => Some(now),
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virgo_isa::{AddrExpr, DataType};
    use virgo_mem::SmemConfig;

    fn wgmma(m: u32, n: u32, k: u32) -> WgmmaOp {
        WgmmaOp {
            a: AddrExpr::fixed(0),
            b: AddrExpr::fixed(0x8000),
            m,
            n,
            k,
            dtype: DataType::Fp16,
        }
    }

    fn run_until_idle(unit: &mut OperandDecoupledUnit, smem: &mut SharedMemory, limit: u64) -> u64 {
        for cycle in 0..limit {
            unit.tick(Cycle::new(cycle), smem);
            if unit.pending() == 0 {
                return cycle;
            }
        }
        limit
    }

    #[test]
    fn operation_completes_and_counts_macs() {
        let mut unit = OperandDecoupledUnit::new(DecoupledConfig::default());
        let mut smem = SharedMemory::new(SmemConfig::default_cluster());
        assert!(unit.try_enqueue(&wgmma(16, 16, 32), 0));
        assert_eq!(unit.pending(), 1);
        let cycles = run_until_idle(&mut unit, &mut smem, 10_000);
        assert_eq!(unit.stats().ops, 1);
        assert_eq!(unit.stats().macs, 16 * 16 * 32);
        // 8192 MACs at 64/cycle = 128 compute cycles, plus operand fetch.
        assert!(cycles >= 128, "completed too fast: {cycles}");
        assert!(smem.stats().bytes_read >= 2 * 16 * 32 * 2);
    }

    #[test]
    fn accumulator_traffic_hits_register_file() {
        let mut unit = OperandDecoupledUnit::new(DecoupledConfig::default());
        let mut smem = SharedMemory::new(SmemConfig::default_cluster());
        unit.try_enqueue(&wgmma(16, 16, 32), 0);
        run_until_idle(&mut unit, &mut smem, 10_000);
        assert_eq!(unit.stats().rf_accum_reads, 256);
        assert_eq!(unit.stats().rf_accum_writes, 256);
    }

    #[test]
    fn queue_depth_limits_outstanding_ops() {
        let mut unit = OperandDecoupledUnit::new(DecoupledConfig {
            queue_depth: 2,
            ..Default::default()
        });
        assert!(unit.try_enqueue(&wgmma(16, 16, 32), 0));
        assert!(unit.try_enqueue(&wgmma(16, 16, 32), 1));
        assert!(!unit.try_enqueue(&wgmma(16, 16, 32), 2));
        assert_eq!(unit.pending(), 2);
    }

    #[test]
    fn double_buffered_addresses_resolve_at_enqueue() {
        let mut unit = OperandDecoupledUnit::new(DecoupledConfig::default());
        let mut smem = SharedMemory::new(SmemConfig::default_cluster());
        let op = WgmmaOp {
            a: AddrExpr::double_buffered(0, 0x4000),
            b: AddrExpr::double_buffered(0x8000, 0x4000),
            m: 16,
            n: 16,
            k: 16,
            dtype: DataType::Fp16,
        };
        // Two enqueues with different execution counts touch both buffers.
        unit.try_enqueue(&op, 0);
        run_until_idle(&mut unit, &mut smem, 10_000);
        let first_bytes = smem.stats().bytes_read;
        unit.try_enqueue(&op, 1);
        run_until_idle(&mut unit, &mut smem, 10_000);
        assert_eq!(unit.stats().ops, 2);
        assert!(smem.stats().bytes_read > first_bytes);
    }

    #[test]
    fn back_to_back_ops_pipeline() {
        let mut unit = OperandDecoupledUnit::new(DecoupledConfig::default());
        let mut smem = SharedMemory::new(SmemConfig::double_banked());
        for i in 0..4 {
            assert!(unit.try_enqueue(&wgmma(16, 16, 32), i));
        }
        let cycles = run_until_idle(&mut unit, &mut smem, 100_000);
        assert_eq!(unit.stats().ops, 4);
        // Four ops of 128 compute cycles each: at least 512 cycles total.
        assert!(cycles >= 512);
    }

    #[test]
    fn idle_unit_tick_is_harmless() {
        let mut unit = OperandDecoupledUnit::new(DecoupledConfig::default());
        let mut smem = SharedMemory::new(SmemConfig::default_cluster());
        assert_eq!(unit.tick(Cycle::new(0), &mut smem), 0);
        assert_eq!(unit.stats().ops, 0);
        assert_eq!(unit.pending(), 0);
    }
}
