//! Core-coupled matrix units for the Virgo GPU model.
//!
//! This crate implements the two families of *core-coupled* matrix units the
//! paper uses as baselines (Section 5.1):
//!
//! * [`TightlyCoupledUnit`] — the Volta-style (and, with a cluster DMA,
//!   Ampere-style) tensor core: a SIMD dot-product unit driven by synchronous
//!   `HMMA` set/step instructions whose operands and accumulators move
//!   through the core's register file,
//! * [`OperandDecoupledUnit`] — the Hopper-style tensor core: a decoupled
//!   access/execute unit that fetches operand tiles directly from the cluster
//!   shared memory (`wgmma`-style asynchronous operation) while still
//!   accumulating into the register file.
//!
//! Both units are instantiated once per SIMT core by the cluster model; the
//! disaggregated cluster-level unit lives in the `virgo-gemmini` crate.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod decoupled;
pub mod tightly;

pub use decoupled::{DecoupledConfig, DecoupledStats, OperandDecoupledUnit};
pub use tightly::{TightlyCoupledConfig, TightlyCoupledStats, TightlyCoupledUnit};
