//! The Volta/Ampere-style tightly-coupled tensor core (Section 5.1.1).
//!
//! The unit is a SIMD-parallel collection of dot-product units in a
//! tree-reduction configuration. A warp drives it with fine-grained,
//! synchronous `HMMA` step instructions; each step reads operand fragments
//! from the register file, performs a fixed number of multiply-accumulates
//! and writes the partial accumulator back to the register file. The model
//! reproduces the timing of the reference microarchitecture
//! (Raihan et al., ISPASS'19): one step occupies the unit for
//! `macs / macs_per_cycle` cycles (2 cycles in the Table 2 configuration).

use virgo_sim::{Cycle, NextActivity, StableHash, StableHasher};

/// Configuration of one tightly-coupled tensor core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TightlyCoupledConfig {
    /// FP16 multiply-accumulates per cycle (32 in Table 2, limited by the
    /// register file read bandwidth).
    pub macs_per_cycle: u32,
}

impl StableHash for TightlyCoupledConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(u64::from(self.macs_per_cycle));
    }
}

impl Default for TightlyCoupledConfig {
    fn default() -> Self {
        TightlyCoupledConfig { macs_per_cycle: 32 }
    }
}

/// Event counters for one tightly-coupled unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TightlyCoupledStats {
    /// HMMA steps executed.
    pub steps: u64,
    /// Multiply-accumulate operations performed.
    pub macs: u64,
    /// 32-bit words staged through the operand buffer.
    pub operand_buffer_words: u64,
    /// 32-bit words staged through the result buffer.
    pub result_buffer_words: u64,
    /// Sequencing/control events (one per step).
    pub control_events: u64,
    /// Cycles the unit was busy computing.
    pub busy_cycles: u64,
}

/// One tightly-coupled (Volta/Ampere-style) tensor core instance.
///
/// # Example
///
/// ```
/// use virgo_tensor::{TightlyCoupledConfig, TightlyCoupledUnit};
/// use virgo_sim::Cycle;
///
/// let mut tc = TightlyCoupledUnit::new(TightlyCoupledConfig::default());
/// assert!(tc.try_step(Cycle::new(0), 64));    // occupies cycles 0-1
/// assert!(!tc.try_step(Cycle::new(1), 64));   // still busy
/// assert!(tc.try_step(Cycle::new(2), 64));
/// assert_eq!(tc.stats().macs, 128);
/// ```
#[derive(Debug, Clone)]
pub struct TightlyCoupledUnit {
    config: TightlyCoupledConfig,
    busy_until: Cycle,
    stats: TightlyCoupledStats,
}

impl TightlyCoupledUnit {
    /// Creates an idle unit.
    ///
    /// # Panics
    ///
    /// Panics if `macs_per_cycle` is zero.
    pub fn new(config: TightlyCoupledConfig) -> Self {
        assert!(config.macs_per_cycle > 0, "unit needs at least one MAC");
        TightlyCoupledUnit {
            config,
            busy_until: Cycle::ZERO,
            stats: TightlyCoupledStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TightlyCoupledConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TightlyCoupledStats {
        self.stats
    }

    /// True while a previously-issued step is still executing at `now`.
    pub fn is_busy(&self, now: Cycle) -> bool {
        self.busy_until > now
    }

    /// Attempts to start one HMMA step of `macs` multiply-accumulates.
    ///
    /// Returns `false` when the unit is still busy with a previous step
    /// (a structural hazard: the issuing warp retries next cycle).
    pub fn try_step(&mut self, now: Cycle, macs: u32) -> bool {
        if self.is_busy(now) {
            return false;
        }
        let cycles = u64::from(macs.div_ceil(self.config.macs_per_cycle).max(1));
        self.busy_until = now.plus(cycles);
        self.stats.steps += 1;
        self.stats.macs += u64::from(macs);
        self.stats.busy_cycles += cycles;
        self.stats.control_events += 1;
        // Each step stages its operand fragments and partial accumulator
        // through small buffers next to the dot-product units. The traffic is
        // proportional to the step size: roughly one operand word per 4 MACs
        // (two FP16 operand pairs per word) and one result word per 8 MACs.
        self.stats.operand_buffer_words += u64::from(macs / 4);
        self.stats.result_buffer_words += u64::from(macs / 8);
        true
    }
}

impl NextActivity for TightlyCoupledUnit {
    /// The unit is driven synchronously by `HMMA` step instructions and has
    /// no tick of its own; its only time-dependent state is the cycle at
    /// which the current step releases the structural hazard. A core whose
    /// warp is waiting on that hazard reports `now` itself, so this is
    /// informational for aggregators rather than load-bearing.
    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if self.is_busy(now) {
            Some(self.busy_until)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_occupies_unit_for_two_cycles() {
        let mut tc = TightlyCoupledUnit::new(TightlyCoupledConfig::default());
        assert!(tc.try_step(Cycle::new(0), 64));
        assert!(tc.is_busy(Cycle::new(0)));
        assert!(tc.is_busy(Cycle::new(1)));
        assert!(!tc.is_busy(Cycle::new(2)));
        assert_eq!(tc.stats().busy_cycles, 2);
    }

    #[test]
    fn busy_unit_rejects_steps() {
        let mut tc = TightlyCoupledUnit::new(TightlyCoupledConfig::default());
        assert!(tc.try_step(Cycle::new(0), 64));
        assert!(!tc.try_step(Cycle::new(0), 64));
        assert!(!tc.try_step(Cycle::new(1), 64));
        assert!(tc.try_step(Cycle::new(2), 64));
        assert_eq!(tc.stats().steps, 2);
    }

    #[test]
    fn small_step_still_takes_one_cycle() {
        let mut tc = TightlyCoupledUnit::new(TightlyCoupledConfig::default());
        assert!(tc.try_step(Cycle::new(0), 8));
        assert!(!tc.is_busy(Cycle::new(1)));
        assert_eq!(tc.stats().busy_cycles, 1);
    }

    #[test]
    fn buffer_traffic_scales_with_macs() {
        let mut tc = TightlyCoupledUnit::new(TightlyCoupledConfig::default());
        tc.try_step(Cycle::new(0), 64);
        let s = tc.stats();
        assert_eq!(s.operand_buffer_words, 16);
        assert_eq!(s.result_buffer_words, 8);
        assert_eq!(s.control_events, 1);
    }

    #[test]
    fn full_throughput_back_to_back() {
        let mut tc = TightlyCoupledUnit::new(TightlyCoupledConfig::default());
        let mut now = Cycle::ZERO;
        for _ in 0..100 {
            assert!(tc.try_step(now, 64));
            now = now.plus(2);
        }
        assert_eq!(tc.stats().macs, 6400);
        // 100 steps × 64 MACs at 32 MACs/cycle = 200 busy cycles.
        assert_eq!(tc.stats().busy_cycles, 200);
    }

    #[test]
    #[should_panic(expected = "at least one MAC")]
    fn zero_macs_per_cycle_rejected() {
        let _ = TightlyCoupledUnit::new(TightlyCoupledConfig { macs_per_cycle: 0 });
    }
}
