//! Cluster-count scaling: the paper's Table 1 argument in one loop.
//!
//! A fixed-size GEMM is split across N ∈ {1, 2, 4, 8} Virgo clusters, all
//! contending for the shared L2/DRAM back-end. Watch cycles fall as clusters
//! are added while DRAM-contention stalls grow — compute scales by adding
//! clusters until the shared memory system becomes the bottleneck. A second
//! loop then widens that bottleneck: the same N=8 machine with the DRAM
//! back-end interleaved over 1, 2 and 4 channels, draining the contention
//! wall the first loop ran into.
//!
//! Run with `cargo run --release --example cluster_scaling`.

use virgo::{DesignKind, Gpu, GpuConfig};
use virgo_kernels::{build_gemm, GemmShape};

fn main() {
    let shape = GemmShape::square(512);
    println!("Virgo {shape} GEMM vs cluster count (shared L2/DRAM):\n");
    println!(
        "{:>8}  {:>10}  {:>9}  {:>14}  {:>8}",
        "clusters", "cycles", "speedup", "dram stall cyc", "MAC util"
    );
    let mut base_cycles = None;
    for clusters in [1u32, 2, 4, 8] {
        let config = GpuConfig::for_design(DesignKind::Virgo).with_clusters(clusters);
        let kernel = build_gemm(&config, shape);
        let report = Gpu::new(config)
            .run(&kernel, 2_000_000_000)
            .expect("kernel finishes");
        let cycles = report.cycles().get();
        let base = *base_cycles.get_or_insert(cycles);
        println!(
            "{:>8}  {:>10}  {:>8.2}x  {:>14}  {:>7.1}%",
            clusters,
            cycles,
            base as f64 / cycles as f64,
            report.dram_contention_stall_cycles(),
            report.mac_utilization().as_percent(),
        );
        // Per-cluster slices show how evenly the tile space was split.
        for slice in report.per_cluster() {
            assert!(slice.performed_macs > 0, "every cluster does real work");
        }
    }
    println!("\nSpeedup saturates as the shared DRAM channel fills: the");
    println!("scaling-vs-bandwidth tradeoff of the paper's Table 1.");

    println!("\nN=8 again, widening the memory system instead:\n");
    println!(
        "{:>8}  {:>10}  {:>14}  {:>8}",
        "channels", "cycles", "dram stall cyc", "MAC util"
    );
    for channels in [1u32, 2, 4] {
        let config = GpuConfig::for_design(DesignKind::Virgo)
            .with_clusters(8)
            .with_dram_channels(channels);
        let kernel = build_gemm(&config, shape);
        let report = Gpu::new(config)
            .run(&kernel, 2_000_000_000)
            .expect("kernel finishes");
        println!(
            "{:>8}  {:>10}  {:>14}  {:>7.1}%",
            channels,
            report.cycles().get(),
            report.dram_contention_stall_cycles(),
            report.mac_utilization().as_percent(),
        );
        // Traffic is conserved: the channel slices sum to the interface.
        let summed: u64 = report.dram_channel_stats().iter().map(|c| c.bytes).sum();
        assert_eq!(summed, report.dram_stats().bytes);
    }
    println!("\nAddress-interleaved channels drain the request queues in");
    println!("parallel, pushing the bandwidth wall out and letting the");
    println!("cluster-scaling argument keep going past N=4.");
}
