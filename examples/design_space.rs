//! A small design-space exploration enabled by the disaggregated
//! architecture: sweep the systolic-array dimension of the Virgo matrix unit
//! and observe utilization, runtime and energy on a fixed GEMM.
//!
//! Run with `cargo run --release -p virgo-bench --example design_space`.

use virgo::{Gpu, GpuConfig, MatrixUnitSpec};
use virgo_bench::{pct, print_table, MAX_CYCLES};
use virgo_gemmini::GemminiConfig;
use virgo_kernels::{build_gemm, GemmShape};

fn main() {
    let shape = GemmShape::square(256);
    let mut rows = Vec::new();

    for dim in [8u32, 16, 32] {
        let mut config = GpuConfig::virgo();
        config.matrix_units = vec![MatrixUnitSpec {
            gemmini: GemminiConfig {
                dim,
                smem_read_bytes: u64::from(dim) * 4,
                queue_depth: 4,
            },
            accumulator_bytes: 32 * 1024,
        }];
        let kernel = build_gemm(&config, shape);
        let peak = config.peak_macs_per_cycle();
        let report = Gpu::new(config)
            .run(&kernel, MAX_CYCLES)
            .expect("sweep point completes");
        rows.push(vec![
            format!("{dim}x{dim}"),
            peak.to_string(),
            report.cycles().get().to_string(),
            pct(report.mac_utilization().as_fraction()),
            format!("{:.1} mW", report.active_power_mw()),
            format!("{:.3} mJ", report.total_energy_mj()),
        ]);
    }

    print_table(
        &format!("Virgo systolic-array size sweep, GEMM {shape}"),
        &[
            "Array",
            "Peak MACs/cycle",
            "Cycles",
            "MAC util",
            "Power",
            "Energy",
        ],
        &rows,
    );
    println!("\nBecause the matrix unit is disaggregated from the SIMT cores, scaling the");
    println!("array does not touch the core microarchitecture or the register file — the");
    println!("scalability argument at the heart of the paper.");
}
