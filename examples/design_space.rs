//! A small design-space exploration enabled by the disaggregated
//! architecture: sweep the systolic-array dimension of the Virgo matrix unit
//! and observe utilization, runtime and energy on a fixed GEMM.
//!
//! The three array sizes are independent simulations, so the sweep runs
//! through the sweep service: sharded across its worker pool via
//! [`virgo_sweep::Query::custom`] (the entry point for hand-built
//! configurations no design-space point describes) and memoized in its
//! report store — re-running this example answers from
//! `target/sweep-cache/`.
//!
//! Run with `cargo run --release --example design_space`.

use virgo::{GpuConfig, MatrixUnitSpec};
use virgo_bench::{pct, print_table, sweep_service};
use virgo_gemmini::GemminiConfig;
use virgo_kernels::{build_gemm, GemmShape};
use virgo_sweep::Query;

fn main() {
    let shape = GemmShape::square(256);
    let service = sweep_service();

    let rows = service.pool().map(vec![8u32, 16, 32], |dim| {
        let mut config = GpuConfig::virgo();
        config.matrix_units = vec![MatrixUnitSpec {
            gemmini: GemminiConfig {
                dim,
                smem_read_bytes: u64::from(dim) * 4,
                queue_depth: 4,
            },
            accumulator_bytes: 32 * 1024,
        }];
        let kernel = build_gemm(&config, shape);
        let peak = config.peak_macs_per_cycle();
        let report = service.run(&Query::custom(config, kernel)).report;
        vec![
            format!("{dim}x{dim}"),
            peak.to_string(),
            report.cycles().get().to_string(),
            pct(report.mac_utilization().as_fraction()),
            format!("{:.1} mW", report.active_power_mw()),
            format!("{:.3} mJ", report.total_energy_mj()),
        ]
    });

    print_table(
        &format!("Virgo systolic-array size sweep, GEMM {shape}"),
        &[
            "Array",
            "Peak MACs/cycle",
            "Cycles",
            "MAC util",
            "Power",
            "Energy",
        ],
        &rows,
    );
    println!("\nBecause the matrix unit is disaggregated from the SIMT cores, scaling the");
    println!("array does not touch the core microarchitecture or the register file — the");
    println!("scalability argument at the heart of the paper.");
}
