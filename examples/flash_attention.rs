//! Fused FlashAttention-3 forward pass on Virgo versus the Ampere-style
//! baseline, plus a numerical check of the blocked online-softmax algorithm.
//!
//! Run with `cargo run --release -p virgo-bench --example flash_attention [SEQ]`
//! (default sequence length 512; the paper evaluates 1024).

use virgo::{DesignKind, Gpu, GpuConfig};
use virgo_bench::{pct, print_table};
use virgo_kernels::functional::{flash_attention_blocked, naive_attention, Matrix};
use virgo_kernels::{build_flash_attention, AttentionShape};

fn main() {
    let seq_len: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let shape = AttentionShape {
        seq_len,
        head_dim: 64,
        heads: 1,
        batch: 1,
    };

    // Numerical sanity check of the mapping: the blocked online-softmax
    // computation matches a naive attention reference.
    let q = Matrix::random(64, 64, 1);
    let k = Matrix::random(64, 64, 2);
    let v = Matrix::random(64, 64, 3);
    let diff = naive_attention(&q, &k, &v).max_abs_diff(&flash_attention_blocked(&q, &k, &v, 16));
    println!("functional check: blocked vs naive attention max |diff| = {diff:.4}");

    let mut rows = Vec::new();
    for design in [DesignKind::AmpereStyle, DesignKind::Virgo] {
        let config = GpuConfig::for_design(design).to_fp32();
        let kernel = build_flash_attention(&config, shape);
        let report = Gpu::new(config)
            .run(&kernel, 2_000_000_000)
            .expect("attention kernel completes");
        rows.push(vec![
            design.name().to_string(),
            report.cycles().get().to_string(),
            pct(report.mac_utilization().as_fraction()),
            format!("{:.1} mW", report.active_power_mw()),
            format!("{:.1} uJ", report.power().total_energy_uj()),
            format!("{:.1} uJ", report.power().core_energy_uj()),
        ]);
    }
    print_table(
        &format!("FlashAttention-3 forward, {shape}"),
        &[
            "Design",
            "Cycles",
            "MAC util",
            "Power",
            "Energy",
            "Core energy",
        ],
        &rows,
    );
    println!("\nThe disaggregated matrix unit lets a single warp launch both GEMMs and then");
    println!("spend its issue slots on softmax, which is why Virgo's utilization and energy");
    println!("are so much better than the warp-specialized Ampere-style mapping.");
}
