//! Compare the four matrix-unit integration styles on one GEMM problem.
//!
//! Run with `cargo run --release -p virgo-bench --example gemm_comparison [N]`
//! where `N` is the (square) GEMM size, default 256.

use virgo::DesignKind;
use virgo_bench::{mw, pct, print_table, run_gemm_all_designs};
use virgo_kernels::GemmShape;

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let shape = GemmShape::square(n);
    println!("Simulating GEMM {shape} on all four designs (this runs them in parallel)...");

    let results = run_gemm_all_designs(shape);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(design, r)| {
            vec![
                design.name().to_string(),
                r.cycles().get().to_string(),
                pct(r.mac_utilization().as_fraction()),
                r.instructions_retired().to_string(),
                mw(r.active_power_mw()),
                format!("{:.3} mJ", r.total_energy_mj()),
            ]
        })
        .collect();
    print_table(
        &format!("GEMM {shape}: design-point comparison"),
        &[
            "Design",
            "Cycles",
            "MAC util",
            "Instructions",
            "Power",
            "Energy",
        ],
        &rows,
    );

    let virgo = &results
        .iter()
        .find(|(d, _)| *d == DesignKind::Virgo)
        .unwrap()
        .1;
    let ampere = &results
        .iter()
        .find(|(d, _)| *d == DesignKind::AmpereStyle)
        .unwrap()
        .1;
    println!(
        "\nVirgo uses {:.1}% of the Ampere-style energy and {:.2}% of its instructions.",
        virgo.total_energy_mj() / ampere.total_energy_mj() * 100.0,
        virgo.instructions_retired() as f64 / ampere.instructions_retired() as f64 * 100.0
    );
}
