//! Two heterogeneous matrix units in one cluster (Section 6.3): a 256³ GEMM
//! on the 16×16 unit runs concurrently with a 128³ GEMM on the 8×8 unit.
//!
//! Run with `cargo run --release -p virgo-bench --example heterogeneous_units`.

use virgo::{Gpu, GpuConfig};
use virgo_bench::{pct, print_table, MAX_CYCLES};
use virgo_kernels::{build_heterogeneous_parallel, build_heterogeneous_serial};

fn main() {
    let config = GpuConfig::virgo_heterogeneous();
    println!(
        "cluster with {} matrix units, {} total MACs/cycle",
        config.matrix_units.len(),
        config.peak_macs_per_cycle()
    );
    let peak = config.peak_macs_per_cycle() as f64;

    let parallel_kernel = build_heterogeneous_parallel(&config);
    let parallel = Gpu::new(config.clone())
        .run(&parallel_kernel, MAX_CYCLES)
        .expect("parallel run");

    let (large, small) = build_heterogeneous_serial(&config);
    let mut gpu = Gpu::new(config);
    let serial_a = gpu.run(&large, MAX_CYCLES).expect("serial large run");
    let serial_b = gpu.run(&small, MAX_CYCLES).expect("serial small run");

    let macs = (large.info.total_macs + small.info.total_macs) as f64;
    let serial_cycles = serial_a.cycles().get() + serial_b.cycles().get();
    let rows = vec![
        vec![
            "parallel".into(),
            parallel.cycles().get().to_string(),
            pct(macs / (parallel.cycles().get() as f64 * peak)),
        ],
        vec![
            "serial".into(),
            serial_cycles.to_string(),
            pct(macs / (serial_cycles as f64 * peak)),
        ],
    ];
    print_table(
        "Heterogeneous matrix units: parallel vs serial execution",
        &["Schedule", "Cycles", "Cluster MAC utilization"],
        &rows,
    );
    println!("\nRunning the two GEMMs concurrently should cost almost no utilization —");
    println!("the disaggregated units share only the shared-memory interconnect and DMA.");
}
