//! Quickstart: simulate a small GEMM on the Virgo design and print the
//! headline metrics.
//!
//! Run with `cargo run --release -p virgo-bench --example quickstart`.

use virgo::{Gpu, GpuConfig};
use virgo_kernels::{build_gemm, GemmShape};

fn main() {
    // 1. Pick a hardware configuration. `GpuConfig::virgo()` is the paper's
    //    Table 2 configuration: 8 Vortex-style SIMT cores plus one
    //    disaggregated 16x16 FP16 matrix unit at the cluster level.
    let config = GpuConfig::virgo();

    // 2. Build a kernel. The kernel generators in `virgo-kernels` produce the
    //    per-warp instruction streams of a GEMM optimized for this design.
    let shape = GemmShape::square(256);
    let kernel = build_gemm(&config, shape);
    println!(
        "kernel `{}`: {} warps, {} dynamic instructions",
        kernel.info.name,
        kernel.warps.len(),
        kernel.dynamic_instructions()
    );

    // 3. Simulate and inspect the report.
    let mut gpu = Gpu::new(config);
    let report = gpu.run(&kernel, 100_000_000).expect("kernel completes");

    println!("cycles            : {}", report.cycles().get());
    println!(
        "runtime           : {:.3} ms",
        report.runtime_seconds() * 1e3
    );
    println!("MAC utilization   : {}", report.mac_utilization());
    println!("instructions      : {}", report.instructions_retired());
    println!("active power      : {:.1} mW", report.active_power_mw());
    println!("active energy     : {:.3} mJ", report.total_energy_mj());
    println!(
        "SMEM read footprint: {:.2} MiB",
        report.smem_read_footprint_bytes() as f64 / (1024.0 * 1024.0)
    );
    println!("SoC area          : {:.2} mm^2", report.area().total_mm2());
}
