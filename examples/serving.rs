//! Multi-tenant serving on one Virgo machine: continuous batching vs the
//! serial whole-GPU baseline.
//!
//! Two tenants offer overlapping streams of GEMM and attention requests
//! against a 4-cluster machine. The example serves the same trace twice —
//! once serially (every request owns the whole GPU, the pre-job-table
//! model) and once with continuous batching onto free cluster subsets —
//! and prints the tail-latency, goodput and energy-per-request comparison.
//!
//! Run with: `cargo run --release --example serving`

use virgo::GpuConfig;
use virgo_kernels::{AttentionShape, GemmShape};
use virgo_serve::{
    generate_trace, ArbitrationPolicy, BatchingMode, RequestClass, ServeConfig, ServeReport,
    Server, TenantSpec,
};

fn print_report(label: &str, report: &ServeReport) {
    println!("{label}:");
    println!(
        "  {} completed, {} timed out, makespan {} cycles",
        report.completed(),
        report.timed_out(),
        report.makespan_cycles
    );
    println!(
        "  latency p50 {} / p99 {} / p99.9 {} cycles",
        report.p50_latency_cycles, report.p99_latency_cycles, report.p999_latency_cycles
    );
    println!(
        "  goodput {:.1} req/s, energy/request {:.4} mJ (active {:.4} + static {:.4})",
        report.goodput_rps,
        report.energy_per_request_mj,
        report.active_energy_mj,
        report.static_energy_mj
    );
    for slice in &report.tenants {
        println!(
            "  tenant {:<12} {} ok, p99 {} cycles, active {:.4} mJ",
            slice.tenant, slice.completed, slice.p99_latency_cycles, slice.active_energy_mj
        );
    }
}

fn main() {
    let gpu = GpuConfig::virgo().with_clusters(4);
    let tenants = [
        TenantSpec::new("interactive", 8_000).with_classes(vec![
            RequestClass::Gemm(GemmShape::square(128)),
            RequestClass::Attention(AttentionShape {
                seq_len: 128,
                head_dim: 64,
                heads: 1,
                batch: 1,
            }),
        ]),
        TenantSpec::new("batch", 20_000)
            .with_classes(vec![RequestClass::Gemm(GemmShape::square(256))])
            .with_clusters(2),
    ];
    let trace = generate_trace(&tenants, 10, 0xBEEF);
    println!(
        "trace: {} requests from {} tenants over {} cycles\n",
        trace.len(),
        tenants.len(),
        trace.last().map_or(0, |r| r.arrival)
    );

    let serial = Server::new(
        ServeConfig::new(gpu.clone())
            .with_policy(ArbitrationPolicy::Fifo)
            .with_batching(BatchingMode::Serial),
    )
    .run(&trace);
    print_report("serial FIFO (whole-GPU occupancy)", &serial);
    println!();

    let continuous = Server::new(ServeConfig::new(gpu)).run(&trace);
    print_report("continuous batching (FIFO admission)", &continuous);
    println!();

    let p99_cut =
        100.0 * (1.0 - continuous.p99_latency_cycles as f64 / serial.p99_latency_cycles as f64);
    println!(
        "continuous batching cuts p99 latency by {:.1}% and lifts goodput {:.2}x",
        p99_cut,
        continuous.goodput_rps / serial.goodput_rps
    );
}
