//! Cross-crate integration tests for the fused FlashAttention-3 workload:
//! the Section 6.2 comparison at a reduced sequence length, plus numerical
//! validation of the blocked online-softmax mapping.

use virgo::{DesignKind, Gpu, GpuConfig, SimReport};
use virgo_kernels::functional::{flash_attention_blocked, naive_attention, Matrix};
use virgo_kernels::{build_flash_attention, AttentionShape};

fn small_shape() -> AttentionShape {
    AttentionShape {
        seq_len: 256,
        head_dim: 64,
        heads: 1,
        batch: 1,
    }
}

fn run(design: DesignKind) -> SimReport {
    let config = GpuConfig::for_design(design).to_fp32();
    let kernel = build_flash_attention(&config, small_shape());
    Gpu::new(config)
        .run(&kernel, 500_000_000)
        .unwrap_or_else(|e| panic!("{design}: {e}"))
}

#[test]
fn virgo_beats_ampere_on_utilization_and_energy() {
    let virgo = run(DesignKind::Virgo);
    let ampere = run(DesignKind::AmpereStyle);

    // Section 6.2: Virgo achieves substantially higher MAC utilization
    // (65.7% vs 35.1% in the paper) ...
    assert!(
        virgo.mac_utilization().as_fraction() > ampere.mac_utilization().as_fraction() * 1.3,
        "virgo {} vs ampere {}",
        virgo.mac_utilization(),
        ampere.mac_utilization()
    );
    // ... and lower total energy (50.6% reduction in the paper).
    assert!(
        virgo.total_energy_mj() < ampere.total_energy_mj(),
        "virgo {} mJ vs ampere {} mJ",
        virgo.total_energy_mj(),
        ampere.total_energy_mj()
    );
    // The core (issue/ALU/RF) energy specifically must shrink, since that is
    // where the disaggregation removes work.
    assert!(virgo.power().core_energy_uj() < ampere.power().core_energy_uj());
}

#[test]
fn virgo_fence_polling_overhead_is_cheap() {
    // Section 4.5.1: the busy-register polling inside virgo_fence is cheap.
    // In this kernel a dedicated orchestrator warp owns every fence, so it
    // spends a large share of its (otherwise idle) time waiting — what must
    // stay small is the *cost* of that waiting: the poll instructions are a
    // tiny fraction of the kernel's instruction stream, and the fences never
    // dominate the runtime outright.
    let virgo = run(DesignKind::Virgo);
    let wait_fraction = virgo.fence_wait_cycles() as f64 / virgo.cycles().get() as f64;
    assert!(wait_fraction < 0.90, "fence wait fraction {wait_fraction}");
    assert!(
        virgo.fence_poll_instructions() > 0,
        "fences must actually poll"
    );
    let poll_fraction = virgo.fence_poll_instructions() as f64
        / (virgo.instructions_retired() + virgo.fence_poll_instructions()) as f64;
    assert!(
        poll_fraction < 0.10,
        "poll instruction fraction {poll_fraction}"
    );
}

#[test]
fn softmax_runs_on_the_simt_cores_in_virgo() {
    let virgo = run(DesignKind::Virgo);
    // The SIMT cores perform the softmax FLOPs while the matrix unit does the
    // GEMMs: both FPU activity and systolic MACs must be present.
    assert!(virgo.core_stats().fpu_lane_ops > 0);
    assert_eq!(virgo.performed_macs(), small_shape().gemm_mac_ops());
}

#[test]
fn blocked_online_softmax_matches_reference_at_kernel_block_size() {
    // The kernel tiles attention in 64-wide blocks; validate that exact
    // configuration numerically.
    let q = Matrix::random(128, 64, 41);
    let k = Matrix::random(128, 64, 42);
    let v = Matrix::random(128, 64, 43);
    let reference = naive_attention(&q, &k, &v);
    let blocked = flash_attention_blocked(&q, &k, &v, 64);
    let diff = reference.max_abs_diff(&blocked);
    assert!(diff < 5e-2, "max |diff| = {diff}");
}
