//! Multi-cluster invariants.
//!
//! Two guarantees anchor the N-cluster refactor:
//!
//! 1. **Single-cluster compatibility** — with `clusters = 1` the machine is
//!    the machine the paper evaluates, and its reports are bit-identical to
//!    the pre-refactor single-cluster simulator. The fingerprints below were
//!    captured from the last single-cluster build (including exact energy /
//!    power bit patterns) and must never drift. They were re-pinned exactly
//!    once, together with the DRAM-timing bugfix (fixed latency now overlaps
//!    channel queueing instead of being charged serially after it) — see the
//!    Volta-style entry below for the only delta — and double as the
//!    `dram_channels = 1` pins of the multi-channel back-end: the default
//!    configuration *is* the single-channel machine.
//! 2. **Mode equivalence at every scale** — `SimMode::Naive` and
//!    `SimMode::FastForward` stay bit-identical when the fast-forward driver
//!    folds event horizons across N clusters sharing one L2/DRAM back-end.

use std::sync::Arc;

use virgo::{DesignKind, Gpu, GpuConfig, SimMode, SimReport};
use virgo_bench::{
    run_flash_attention_clusters, run_gemm_clusters, run_gemm_with_mode, ReportDigest,
};
use virgo_isa::{
    AddrExpr, DataType, DeviceId, DmaCopyCmd, Kernel, KernelInfo, LaneAccess, MemLoc, MmioCommand,
    ProgramBuilder, WarpAssignment, WarpOp,
};
use virgo_kernels::{AttentionShape, GemmShape};

/// Pre-refactor fingerprint of one report: every integer metric the digest
/// covers plus the exact bit patterns of the derived floating-point values.
struct Fingerprint {
    design: DesignKind,
    cycles: u64,
    instructions: u64,
    fence_polls: u64,
    fence_wait_cycles: u64,
    performed_macs: u64,
    smem_bytes_read: u64,
    energy_mj_bits: u64,
    power_mw_bits: u64,
}

impl Fingerprint {
    fn assert_matches(&self, report: &SimReport) {
        let d = self.design;
        assert_eq!(report.cycles().get(), self.cycles, "{d} cycles");
        assert_eq!(
            report.instructions_retired(),
            self.instructions,
            "{d} instructions"
        );
        assert_eq!(
            report.fence_poll_instructions(),
            self.fence_polls,
            "{d} fence polls"
        );
        assert_eq!(
            report.fence_wait_cycles(),
            self.fence_wait_cycles,
            "{d} fence wait cycles"
        );
        assert_eq!(report.performed_macs(), self.performed_macs, "{d} MACs");
        assert_eq!(
            report.smem_read_footprint_bytes(),
            self.smem_bytes_read,
            "{d} smem bytes"
        );
        assert_eq!(
            report.total_energy_mj().to_bits(),
            self.energy_mj_bits,
            "{d} energy bits"
        );
        assert_eq!(
            report.active_power_mw().to_bits(),
            self.power_mw_bits,
            "{d} power bits"
        );
    }
}

/// With one cluster, the 128³ GEMM reports match the pre-refactor simulator
/// bit for bit on every design point.
#[test]
fn single_cluster_gemm_reports_match_pre_refactor_fingerprints() {
    let shape = GemmShape {
        m: 128,
        n: 128,
        k: 128,
    };
    let fingerprints = [
        // Re-pinned when the DRAM fixed latency was made to overlap with
        // channel queueing (it used to be charged serially on top): the
        // Volta-style design is the only one whose demand misses queue
        // back-to-back on the channel, so its cycle count dropped
        // 25298 -> 24498 (and active power rose accordingly — the energy
        // bits are unchanged because no event count changed). The other
        // designs' DMA transfers never overlapped queueing with latency, so
        // their fingerprints are identical pre- and post-fix.
        Fingerprint {
            design: DesignKind::VoltaStyle,
            cycles: 24498,
            instructions: 96384,
            fence_polls: 0,
            fence_wait_cycles: 0,
            performed_macs: 2097152,
            smem_bytes_read: 786432,
            energy_mj_bits: 0x3f7c7e449b0ee07f,
            power_mw_bits: 0x405c6546905495f6,
        },
        Fingerprint {
            design: DesignKind::AmpereStyle,
            cycles: 23951,
            instructions: 87196,
            fence_polls: 194,
            fence_wait_cycles: 1548,
            performed_macs: 2097152,
            smem_bytes_read: 786432,
            energy_mj_bits: 0x3f7afaf085666c52,
            power_mw_bits: 0x405b8079fe3c9579,
        },
        Fingerprint {
            design: DesignKind::HopperStyle,
            cycles: 16099,
            instructions: 5468,
            fence_polls: 160,
            fence_wait_cycles: 1276,
            performed_macs: 2097152,
            smem_bytes_read: 524288,
            energy_mj_bits: 0x3f61ea625f47c586,
            power_mw_bits: 0x404b2b3b446fd46d,
        },
        Fingerprint {
            design: DesignKind::Virgo,
            cycles: 15845,
            instructions: 142,
            fence_polls: 1806,
            fence_wait_cycles: 14437,
            performed_macs: 2097152,
            smem_bytes_read: 294912,
            energy_mj_bits: 0x3f5959eb7e47bf6c,
            power_mw_bits: 0x404387da1cd22667,
        },
    ];
    for fp in &fingerprints {
        let report = run_gemm_with_mode(fp.design, shape, SimMode::FastForward);
        fp.assert_matches(&report);
        // The single-cluster report has exactly one per-cluster slice and it
        // agrees with the aggregates.
        assert_eq!(report.clusters(), 1);
        assert_eq!(
            report.per_cluster()[0].performed_macs,
            report.performed_macs()
        );
    }
}

/// The FlashAttention-3 fingerprints (FP32 paper shape) also match the
/// pre-refactor simulator bit for bit.
#[test]
fn single_cluster_flash_attention_matches_pre_refactor_fingerprints() {
    let shape = AttentionShape::paper_default();
    let fingerprints = [
        Fingerprint {
            design: DesignKind::AmpereStyle,
            cycles: 2834705,
            instructions: 9750272,
            fence_polls: 65536,
            fence_wait_cycles: 523776,
            performed_macs: 134217728,
            smem_bytes_read: 71303168,
            energy_mj_bits: 0x3fe550c5563e2bb0,
            power_mw_bits: 0x40577f95c3066315,
        },
        Fingerprint {
            design: DesignKind::Virgo,
            cycles: 2212017,
            instructions: 1713008,
            fence_polls: 147280,
            fence_wait_cycles: 1176544,
            performed_macs: 134217728,
            smem_bytes_read: 77463552,
            energy_mj_bits: 0x3fc9b9f33d39456a,
            power_mw_bits: 0x40422c1c3df0818a,
        },
    ];
    for fp in &fingerprints {
        let report = run_flash_attention_clusters(fp.design, shape, 1, SimMode::FastForward);
        fp.assert_matches(&report);
    }
}

/// Naive and fast-forward reports stay bit-identical when the GEMM is split
/// over 2 and 4 clusters, on every design point.
#[test]
fn multi_cluster_gemm_is_bit_identical_across_modes() {
    let shape = GemmShape {
        m: 128,
        n: 128,
        k: 128,
    };
    for clusters in [2u32, 4] {
        for design in DesignKind::all() {
            let naive =
                ReportDigest::of(&run_gemm_clusters(design, shape, clusters, SimMode::Naive));
            let fast = ReportDigest::of(&run_gemm_clusters(
                design,
                shape,
                clusters,
                SimMode::FastForward,
            ));
            assert_eq!(naive, fast, "{design} x{clusters} GEMM digests diverge");
            assert!(naive.performed_macs > 0, "{design} x{clusters}");
        }
    }
}

/// Naive and fast-forward reports stay bit-identical for the FlashAttention
/// mapping on 2 and 4 clusters (reduced sequence length keeps the naive
/// reference affordable).
#[test]
fn multi_cluster_flash_attention_is_bit_identical_across_modes() {
    let shape = AttentionShape {
        seq_len: 256,
        head_dim: 64,
        heads: 1,
        batch: 1,
    };
    for clusters in [2u32, 4] {
        for design in [DesignKind::AmpereStyle, DesignKind::Virgo] {
            let naive = ReportDigest::of(&run_flash_attention_clusters(
                design,
                shape,
                clusters,
                SimMode::Naive,
            ));
            let fast = ReportDigest::of(&run_flash_attention_clusters(
                design,
                shape,
                clusters,
                SimMode::FastForward,
            ));
            assert_eq!(
                naive, fast,
                "{design} x{clusters} FlashAttention digests diverge"
            );
        }
    }
}

/// The synthetic stall-storm kernel (DMA waits, fence spins, cross-core
/// barriers, drained-cursor loads) split over clusters: both modes agree and
/// the per-cluster slices cover the whole machine.
#[test]
fn multi_cluster_stall_storm_is_bit_identical_across_modes() {
    // Each cluster storms a disjoint global-memory range so every cluster's
    // DMA traffic really reaches the shared DRAM channel instead of hitting
    // lines another cluster already pulled into the shared L2.
    fn stall_program(global_base: u64) -> Arc<virgo_isa::Program> {
        let mut b = ProgramBuilder::new();
        b.repeat(4, |b| {
            let cmd = MmioCommand::DmaCopy(DmaCopyCmd::new(
                MemLoc::global(global_base),
                MemLoc::shared(0u64),
                64 * 1024,
            ));
            b.op(WarpOp::MmioWrite {
                device: DeviceId::DMA0,
                cmd,
            });
            b.op(WarpOp::FenceAsync { max_outstanding: 0 });
            b.op(WarpOp::Barrier { id: 0 });
            let access = LaneAccess::contiguous_words(AddrExpr::fixed(global_base), 8);
            b.op(WarpOp::LoadGlobal { access });
            b.op(WarpOp::WaitLoads);
        });
        // Trailing load with no WaitLoads: the warp drains its program while
        // loads are still in flight.
        let access = LaneAccess::contiguous_words(AddrExpr::fixed(global_base + 4096), 8);
        b.op(WarpOp::LoadGlobal { access });
        Arc::new(b.build())
    }

    for clusters in [2u32, 4] {
        let mut warps = Vec::new();
        for cluster in 0..clusters {
            let program = stall_program(virgo_kernels::cluster_addr_offset(cluster));
            warps.push(WarpAssignment::on_cluster(
                cluster,
                0,
                0,
                Arc::clone(&program),
            ));
            warps.push(WarpAssignment::on_cluster(cluster, 1, 0, program));
        }
        let kernel = Kernel::new(KernelInfo::new("stall-mix-multi", 0, DataType::Fp16), warps);
        let config = GpuConfig::virgo().with_clusters(clusters);
        let naive = Gpu::new(config.clone())
            .run_with_mode(&kernel, 10_000_000, SimMode::Naive)
            .expect("naive finishes");
        let fast = Gpu::new(config)
            .run_with_mode(&kernel, 10_000_000, SimMode::FastForward)
            .expect("fast-forward finishes");
        assert_eq!(
            ReportDigest::of(&naive),
            ReportDigest::of(&fast),
            "x{clusters}"
        );
        // Sanity: the kernel really exercised the stall paths, every cluster
        // ran its share, and every cluster's DMA reached the shared DRAM.
        assert!(naive.fence_wait_cycles() > 0);
        assert_eq!(naive.clusters(), clusters as usize);
        for slice in naive.per_cluster() {
            assert!(
                slice.core_stats.instrs_issued > 0,
                "cluster {}",
                slice.cluster
            );
            assert!(
                slice.contention.dram_requests > 0,
                "cluster {}",
                slice.cluster
            );
        }
    }
}

/// A fixed-size GEMM split over more clusters finishes in strictly fewer
/// cycles while total DRAM-contention stalls grow — the paper's
/// scaling-vs-bandwidth tradeoff, checked here at test scale (the
/// `clusters_scaling` bench enforces the same gate on the full sweep).
#[test]
fn cluster_scaling_trades_cycles_for_dram_contention() {
    let shape = GemmShape {
        m: 256,
        n: 256,
        k: 256,
    };
    let reports: Vec<SimReport> = [1u32, 2, 4]
        .iter()
        .map(|&n| run_gemm_clusters(DesignKind::Virgo, shape, n, SimMode::FastForward))
        .collect();
    for pair in reports.windows(2) {
        assert!(
            pair[1].cycles() < pair[0].cycles(),
            "adding clusters must reduce cycles: {} -> {}",
            pair[0].cycles().get(),
            pair[1].cycles().get()
        );
        assert!(
            pair[1].dram_contention_stall_cycles() >= pair[0].dram_contention_stall_cycles(),
            "contention must not shrink with more clusters"
        );
    }
    let last = reports.last().expect("non-empty");
    assert!(
        last.dram_contention_stall_cycles() > reports[0].dram_contention_stall_cycles(),
        "4 clusters must show real DRAM contention"
    );
    // Work conservation: every cluster count performs the same MACs.
    for r in &reports {
        assert_eq!(r.performed_macs(), shape.mac_ops());
    }
}
