//! Cross-crate integration tests of the design-point configurations (Table 2,
//! Figure 7) and randomized property tests of the ISA program structures.
//!
//! The property tests draw their cases from the workspace's own
//! deterministic [`SplitMix64`] generator (the environment has no registry
//! access, so an external property-testing framework is not an option); every
//! run exercises the same seeded case set, keeping failures reproducible.

use std::sync::Arc;
use virgo::{DesignKind, GpuConfig};
use virgo_energy::{AreaModel, Component};
use virgo_isa::{ProgramBuilder, WarpOp};
use virgo_sim::SplitMix64;

#[test]
fn every_design_exposes_256_fp16_macs_per_cluster() {
    for design in DesignKind::all() {
        assert_eq!(
            GpuConfig::for_design(design).peak_macs_per_cycle(),
            256,
            "{design}"
        );
    }
}

#[test]
fn table2_configuration_invariants() {
    let virgo = GpuConfig::virgo();
    assert_eq!(virgo.cores, 8);
    assert_eq!(virgo.core.warps, 8);
    assert_eq!(virgo.core.lanes, 8);
    assert_eq!(virgo.smem.capacity_bytes, 128 * 1024);
    assert_eq!(virgo.matrix_units[0].gemmini.dim, 16);
    assert_eq!(virgo.matrix_units[0].accumulator_bytes, 32 * 1024);

    let hopper = GpuConfig::hopper_style();
    assert_eq!(hopper.cores, 4);
    assert_eq!(hopper.decoupled.macs_per_cycle, 64);

    let volta = GpuConfig::volta_style();
    assert_eq!(volta.tightly.macs_per_cycle, 32);
    assert!(!volta.design.has_dma());
}

#[test]
fn area_comparison_matches_figure7_shape() {
    // Figure 7: Virgo's SoC is essentially area-neutral versus the
    // Volta-style SoC (-0.1% in the paper) and slightly larger than the
    // Hopper-style SoC (+3.0%), with L1 caches and cores dominating.
    let model = AreaModel::default_16nm();
    let volta = model.estimate(&GpuConfig::volta_style().area_params());
    let hopper = model.estimate(&GpuConfig::hopper_style().area_params());
    let virgo = model.estimate(&GpuConfig::virgo().area_params());

    let ratio_volta = virgo.total_mm2() / volta.total_mm2();
    assert!(
        (0.9..1.1).contains(&ratio_volta),
        "virgo/volta area {ratio_volta}"
    );
    assert!(
        virgo.total_mm2() > hopper.total_mm2(),
        "Virgo has more cores than Hopper-style"
    );

    let l1 = virgo.component_mm2(Component::L1Cache);
    let matrix = virgo.component_mm2(Component::MatrixUnit);
    assert!(l1 > matrix, "L1 flop arrays dominate the matrix unit area");
}

#[test]
fn fp32_configurations_halve_matrix_throughput() {
    for design in [DesignKind::AmpereStyle, DesignKind::Virgo] {
        let fp16 = GpuConfig::for_design(design);
        let fp32 = fp16.to_fp32();
        assert!(
            fp32.peak_macs_per_cycle() <= fp16.peak_macs_per_cycle() / 2,
            "{design}"
        );
    }
}

/// The dynamic length computed statically always matches the number of
/// operations the cursor actually yields, for arbitrary loop structures.
#[test]
fn cursor_yields_exactly_dynamic_len() {
    let mut rng = SplitMix64::new(0xC0FFEE);
    for _ in 0..256 {
        let outer = rng.next_below(6);
        let inner = rng.next_below(6);
        let pre_ops = rng.next_below(4) as u32;
        let body_ops = rng.next_below(4) as u32;
        let post_ops = rng.next_below(4) as u32;

        let mut builder = ProgramBuilder::new();
        builder.op_n(pre_ops, WarpOp::Nop);
        builder.repeat(outer, |b| {
            b.op_n(
                body_ops,
                WarpOp::Alu {
                    rf_reads: 1,
                    rf_writes: 1,
                },
            );
            b.repeat(inner, |b| {
                b.op(WarpOp::Nop);
            });
        });
        builder.op_n(post_ops, WarpOp::Nop);
        let program = Arc::new(builder.build());
        let mut cursor = program.cursor();
        let mut yielded = 0u64;
        while cursor.next_op().is_some() {
            yielded += 1;
        }
        assert_eq!(yielded, program.dynamic_len());
        let expected =
            u64::from(pre_ops) + outer * (u64::from(body_ops) + inner) + u64::from(post_ops);
        assert_eq!(
            yielded, expected,
            "outer {outer} inner {inner} pre {pre_ops} body {body_ops} post {post_ops}"
        );
    }
}

/// Address expressions with a modulo never leave their buffer window.
#[test]
fn double_buffered_addresses_stay_in_two_buffers() {
    let mut rng = SplitMix64::new(0xB0FFE7);
    for _ in 0..512 {
        let base = rng.next_below(1_000_000);
        let stride = 1 + rng.next_below(99_999);
        let exec = rng.next_below(10_000);
        let addr = virgo_isa::AddrExpr::double_buffered(base, stride);
        let value = addr.eval(exec);
        assert!(
            value == base || value == base + stride,
            "base {base} stride {stride} exec {exec} -> {value}"
        );
        assert_eq!(addr.eval(exec), addr.eval(exec + 2));
    }
}

/// Coalescing never produces more line requests than lane accesses and
/// always covers every accessed byte.
#[test]
fn coalescer_output_is_bounded_and_covering() {
    let mut rng = SplitMix64::new(0x0A1E5CE);
    for _ in 0..256 {
        let len = 1 + rng.next_below(15) as usize;
        let addrs: Vec<u64> = (0..len).map(|_| rng.next_below(65_536)).collect();
        let mut coalescer = virgo_mem::Coalescer::new(32);
        let lines = coalescer.coalesce(&addrs, 4);
        assert!(lines.len() <= addrs.len() * 2);
        for &addr in &addrs {
            let covered = lines.iter().any(|&line| addr >= line && addr < line + 32)
                || lines
                    .iter()
                    .any(|&line| addr + 3 >= line && addr + 3 < line + 32);
            assert!(covered, "address {addr} not covered by {lines:?}");
        }
    }
}
