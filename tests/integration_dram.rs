//! Property tests of the multi-channel DRAM back-end, SplitMix64-driven in
//! the style of `tests/integration_sweep.rs`.
//!
//! Two invariants anchor the multi-channel refactor:
//!
//! 1. **Single-channel bit-identity** — a [`MultiChannelDram`] configured
//!    with one channel behaves exactly like the bare single-channel
//!    [`DramModel`] it replaced (same completion cycle and same statistics
//!    for every request of any random access sequence), and a full
//!    simulation with `dram_channels = 1` is bit-identical to the default
//!    machine (whose fingerprints `tests/integration_clusters.rs` pins).
//! 2. **Conservation** — routing whole requests over any number of channels
//!    never creates or loses traffic: per-channel reads/writes/bytes/bursts
//!    always sum to the single-channel totals for the same sequence. (At
//!    the `MemoryBackend` level, a cold DMA whose missed lines straddle an
//!    interleave boundary pays burst rounding once per touched channel —
//!    each channel's bus really moves its own line; requested bytes are
//!    still conserved. `straddling_partial_lines_round_per_channel` in
//!    `crates/mem/src/backend.rs` pins that edge.)

use virgo::{DesignKind, SimMode};
use virgo_bench::{run_gemm_clusters, ReportDigest};
use virgo_kernels::GemmShape;
use virgo_mem::{DramConfig, DramModel, DramStats, MultiChannelDram};
use virgo_sim::{Cycle, SplitMix64};
use virgo_sweep::{Query, SweepPoint, SweepService};

/// One pseudo-random DRAM request.
#[derive(Debug, Clone, Copy)]
struct Request {
    now: u64,
    addr: u64,
    bytes: u64,
    write: bool,
}

/// A random access sequence with loosely increasing presentation times,
/// mixed transfer sizes (word-sized demand misses up to multi-KiB DMA
/// chunks) and addresses spread over a few MiB.
fn random_sequence(rng: &mut SplitMix64, len: usize) -> Vec<Request> {
    let mut now = 0u64;
    (0..len)
        .map(|_| {
            // Sometimes a burst of same-cycle requests, sometimes a gap long
            // enough to drain the queues.
            now += match rng.next_below(4) {
                0 => 0,
                1 => rng.next_below(8),
                2 => rng.next_below(200),
                _ => rng.next_below(5000),
            };
            Request {
                now,
                addr: rng.next_below(1 << 22),
                bytes: 1 + rng.next_below(8192),
                write: rng.next_below(2) == 0,
            }
        })
        .collect()
}

fn total(stats: &[DramStats]) -> DramStats {
    let mut sum = DramStats::default();
    for s in stats {
        sum.merge(s);
    }
    sum
}

/// Property: with `channels = 1` the subsystem is the single-channel model,
/// request for request — completions and statistics are bit-identical to
/// the pre-refactor [`DramModel`] across random sequences.
#[test]
fn single_channel_subsystem_is_bit_identical_to_dram_model() {
    let mut rng = SplitMix64::new(0xD3A1_0001);
    for trial in 0..8 {
        let config = DramConfig {
            latency: [0, 10, 100][rng.next_below(3) as usize],
            bytes_per_cycle: [8, 32][rng.next_below(2) as usize],
            burst_bytes: [32, 64][rng.next_below(2) as usize],
            channels: 1,
            interleave_bytes: 256,
        };
        let mut reference = DramModel::new(config);
        let mut subsystem = MultiChannelDram::new(config);
        for (i, req) in random_sequence(&mut rng, 200).iter().enumerate() {
            let expected = reference.access(Cycle::new(req.now), req.bytes, req.write);
            let got = subsystem.access(Cycle::new(req.now), req.addr, req.bytes, req.write);
            assert_eq!(
                expected, got,
                "trial {trial} request {i}: single-channel completion diverged"
            );
        }
        assert_eq!(
            reference.stats(),
            subsystem.stats(),
            "trial {trial}: single-channel statistics diverged"
        );
        assert_eq!(subsystem.per_channel_stats(), vec![reference.stats()]);
    }
}

/// Property: traffic is conserved across any channel count — the same
/// sequence routed over 2, 4 or 8 channels moves exactly the bytes, bursts
/// and request counts of the single-channel run, just spread out.
#[test]
fn traffic_is_conserved_across_channel_counts() {
    let mut rng = SplitMix64::new(0xD3A1_0002);
    for trial in 0..6 {
        let sequence = random_sequence(&mut rng, 300);
        let base = DramConfig::default_soc();
        let mut single = MultiChannelDram::new(base);
        for req in &sequence {
            single.access(Cycle::new(req.now), req.addr, req.bytes, req.write);
        }
        let expected = single.stats();
        for channels in [2u32, 4, 8] {
            let mut multi = MultiChannelDram::new(base.with_channels(channels));
            let mut slowest = Cycle::ZERO;
            for req in &sequence {
                slowest =
                    slowest.max(multi.access(Cycle::new(req.now), req.addr, req.bytes, req.write));
            }
            let per_channel = multi.per_channel_stats();
            assert_eq!(per_channel.len(), channels as usize);
            assert_eq!(
                total(&per_channel),
                expected,
                "trial {trial}: {channels}-channel totals diverged"
            );
            assert_eq!(multi.stats(), expected);
            // Each request lands on exactly the channel its address names.
            assert!(
                per_channel
                    .iter()
                    .filter(|s| s.reads + s.writes > 0)
                    .count()
                    > 1,
                "trial {trial}: the sequence must actually stripe over channels"
            );
            assert!(slowest.get() > 0);
        }
    }
}

/// Full-simulator contract: `with_dram_channels(1)` *is* the default
/// machine — reports are bit-identical for every design at N ∈ {1, 2, 4} —
/// and the per-channel report slices always sum to the aggregate interface
/// statistics.
#[test]
fn single_channel_config_matches_default_machine_reports() {
    let shape = GemmShape {
        m: 128,
        n: 128,
        k: 128,
    };
    let service = SweepService::in_memory(2);
    for clusters in [1u32, 2, 4] {
        for design in DesignKind::all() {
            let default_point = SweepPoint::gemm(design, shape).with_clusters(clusters);
            let explicit = default_point.with_dram_channels(1);
            let default_report = service.run(&Query::from(default_point)).report;
            let explicit_report = service.run(&Query::from(explicit)).report;
            assert_eq!(
                ReportDigest::of(&default_report),
                ReportDigest::of(&explicit_report),
                "{design} x{clusters}: channels=1 must be the default machine"
            );
            assert_eq!(default_report.dram_channels(), 1);
            assert_eq!(
                default_report.dram_channel_stats()[0],
                *default_report.dram_stats(),
                "one channel carries all the traffic"
            );
        }
    }
}

/// Pushing the contention wall out: splitting the shared back-end over more
/// channels strictly reduces total DRAM queueing on a contended multi-cluster
/// GEMM, while conserving the traffic's burst count, and never slows the
/// machine down.
#[test]
fn more_channels_reduce_contention_on_a_contended_gemm() {
    let shape = GemmShape {
        m: 256,
        n: 256,
        k: 256,
    };
    let reports: Vec<_> = [1u32, 2, 4]
        .iter()
        .map(|&channels| run_gemm_clusters_channels(DesignKind::VoltaStyle, shape, 4, channels))
        .collect();
    for pair in reports.windows(2) {
        assert!(
            pair[1].dram_contention_stall_cycles() < pair[0].dram_contention_stall_cycles(),
            "channel scaling must drain queueing: {} -> {}",
            pair[0].dram_contention_stall_cycles(),
            pair[1].dram_contention_stall_cycles()
        );
        assert!(
            pair[1].cycles() <= pair[0].cycles(),
            "extra memory bandwidth must never slow the kernel down"
        );
    }
    for report in &reports {
        let summed: u64 = report.dram_channel_stats().iter().map(|c| c.bursts).sum();
        assert_eq!(summed, report.dram_stats().bursts);
        // Per-cluster per-channel stalls sum to the machine metric here:
        // the Volta-style design has no DMA engine, so every transfer is a
        // single-channel line access whose critical-path wait *is* its
        // channel wait (split DMAs on other designs make the sum an upper
        // bound instead).
        let per_cluster_sum: u64 = report
            .per_cluster()
            .iter()
            .flat_map(|c| c.contention.per_channel.iter())
            .map(|ch| ch.stall_cycles)
            .sum();
        assert_eq!(per_cluster_sum, report.dram_contention_stall_cycles());
    }
}

fn run_gemm_clusters_channels(
    design: DesignKind,
    shape: GemmShape,
    clusters: u32,
    channels: u32,
) -> virgo::SimReport {
    let query = Query::new(design, shape)
        .clusters(clusters)
        .dram_channels(channels);
    (*virgo_bench::sweep_service().run(&query).report).clone()
}

/// The bench helper (which always runs single-channel points) and an
/// explicit channels=1 sweep point answer from the same cache with the same
/// bits.
#[test]
fn helper_and_service_answers_agree() {
    let shape = GemmShape {
        m: 128,
        n: 128,
        k: 128,
    };
    let via_helper = run_gemm_clusters(DesignKind::Virgo, shape, 2, SimMode::FastForward);
    let via_channels = run_gemm_clusters_channels(DesignKind::Virgo, shape, 2, 1);
    assert_eq!(
        ReportDigest::of(&via_helper),
        ReportDigest::of(&via_channels)
    );
}
