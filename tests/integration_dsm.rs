//! Inter-cluster DSM invariants.
//!
//! Three guarantees anchor the DSM tentpole:
//!
//! 1. **DSM-off bit-identity** — with the fabric disabled (the default),
//!    every report is bit-identical to the pre-DSM machine: the fabric's
//!    presence perturbs nothing. (The pre-DSM fingerprints themselves are
//!    pinned in `integration_clusters.rs` and must keep passing unchanged;
//!    here we additionally pin that even an *enabled-but-unused* fabric
//!    changes no counter.)
//! 2. **Mode equivalence** — `SimMode::Naive` and `SimMode::FastForward`
//!    stay bit-identical when the driver folds the fabric's event horizon,
//!    for both DSM workloads at N ∈ {2, 4}.
//! 3. **Traffic conservation** — bytes put onto the fabric equal the bytes
//!    accounted per requester and per link, under SplitMix64-driven random
//!    transfer sequences on both topologies.

use virgo::{Gpu, GpuConfig, SimMode, SimReport};
use virgo_bench::ReportDigest;
use virgo_isa::Kernel;
use virgo_kernels::{
    build_flash_attention_broadcast, build_gemm, build_split_k_gemm, AttentionShape, GemmShape,
};
use virgo_mem::{DsmConfig, DsmFabric};
use virgo_sim::{Cycle, SplitMix64};

const MAX_CYCLES: u64 = 200_000_000;

fn run(config: &GpuConfig, kernel: &Kernel, mode: SimMode) -> SimReport {
    Gpu::new(config.clone())
        .run_with_mode(kernel, MAX_CYCLES, mode)
        .unwrap_or_else(|e| panic!("{} must finish: {e}", kernel.info.name))
}

fn splitk_shape() -> GemmShape {
    GemmShape {
        m: 256,
        n: 256,
        k: 512,
    }
}

/// The split-K GEMM is bit-identical across driver modes at N ∈ {2, 4},
/// on both the DSM and the DRAM reduction path.
#[test]
fn split_k_gemm_is_bit_identical_across_modes() {
    for clusters in [2u32, 4] {
        for dsm in [false, true] {
            let mut config = GpuConfig::virgo().with_clusters(clusters);
            if dsm {
                config = config.with_dsm_enabled();
            }
            let kernel = build_split_k_gemm(&config, splitk_shape());
            let naive = ReportDigest::of(&run(&config, &kernel, SimMode::Naive));
            let fast = ReportDigest::of(&run(&config, &kernel, SimMode::FastForward));
            assert_eq!(
                naive, fast,
                "split-K x{clusters} dsm={dsm} digests diverge across modes"
            );
            assert_eq!(naive.performed_macs, splitk_shape().mac_ops());
        }
    }
}

/// The broadcast FlashAttention variant is bit-identical across driver modes
/// at N ∈ {2, 4}.
#[test]
fn broadcast_attention_is_bit_identical_across_modes() {
    let shape = AttentionShape {
        seq_len: 256,
        head_dim: 64,
        heads: 1,
        batch: 1,
    };
    for clusters in [2u32, 4] {
        let config = GpuConfig::virgo()
            .to_fp32()
            .with_clusters(clusters)
            .with_dsm_enabled();
        let kernel = build_flash_attention_broadcast(&config, shape);
        let naive = ReportDigest::of(&run(&config, &kernel, SimMode::Naive));
        let fast = ReportDigest::of(&run(&config, &kernel, SimMode::FastForward));
        assert_eq!(
            naive, fast,
            "broadcast attention x{clusters} digests diverge across modes"
        );
        assert!(naive.dsm_bytes > 0, "the broadcast must use the fabric");
    }
}

/// An enabled-but-unused fabric perturbs nothing: a kernel with no remote
/// traffic reports bit-identically whether the fabric is on or off. Together
/// with the pinned pre-DSM fingerprints in `integration_clusters.rs`, this
/// is the zero-re-pin guarantee of the DSM change.
#[test]
fn unused_fabric_is_bit_identical_to_disabled() {
    let shape = GemmShape {
        m: 256,
        n: 128,
        k: 256,
    };
    for clusters in [1u32, 2] {
        let off = GpuConfig::virgo().with_clusters(clusters);
        let on = off.clone().with_dsm_enabled();
        assert!(!off.dsm.enabled && on.dsm.enabled);
        let kernel = build_gemm(&off, shape);
        let base = ReportDigest::of(&run(&off, &kernel, SimMode::FastForward));
        let with_fabric = ReportDigest::of(&run(&on, &kernel, SimMode::FastForward));
        assert_eq!(
            base, with_fabric,
            "x{clusters}: an unused fabric must not change any counter"
        );
        assert_eq!(base.dsm_transfers, 0);
        assert_eq!(base.dsm_bytes, 0);
    }
}

/// The DSM reduction path strictly beats the DRAM round trip at N = 4: less
/// DRAM traffic and fewer total cycles (the miniature of the `dsm_scaling`
/// bench gate).
#[test]
fn split_k_dsm_beats_dram_path_at_n4() {
    let dram_cfg = GpuConfig::virgo().with_clusters(4);
    let dsm_cfg = dram_cfg.clone().with_dsm_enabled();
    let dram = run(
        &dram_cfg,
        &build_split_k_gemm(&dram_cfg, splitk_shape()),
        SimMode::FastForward,
    );
    let dsm = run(
        &dsm_cfg,
        &build_split_k_gemm(&dsm_cfg, splitk_shape()),
        SimMode::FastForward,
    );
    assert!(
        dsm.dram_bytes() < dram.dram_bytes(),
        "DSM must cut DRAM traffic: {} vs {}",
        dsm.dram_bytes(),
        dram.dram_bytes()
    );
    assert!(
        dsm.cycles() < dram.cycles(),
        "DSM must cut total cycles: {:?} vs {:?}",
        dsm.cycles(),
        dram.cycles()
    );
    assert!(dsm.dsm_bytes() > 0);
    assert_eq!(dram.dsm_bytes(), 0, "DRAM path stays off the fabric");
    // The report carries the per-cluster and per-link breakdowns: every
    // producer pushed through the consumer's ingress link.
    let links = dsm.dsm_link_stats();
    assert_eq!(links.len(), 4);
    assert!(links[0].bytes > 0, "all partials land on cluster 0's port");
    assert_eq!(links[1].bytes + links[2].bytes + links[3].bytes, 0);
    for producer in &dsm.per_cluster()[1..] {
        assert!(producer.dsm.bytes > 0, "every producer used the fabric");
    }
    assert_eq!(
        dsm.per_cluster()[0].dsm.bytes,
        0,
        "the consumer only receives"
    );
}

/// The broadcast attention variant moves strictly fewer DRAM bytes than its
/// per-cluster-streams DRAM twin at the same cluster count.
#[test]
fn broadcast_attention_cuts_dram_traffic() {
    let shape = AttentionShape {
        seq_len: 256,
        head_dim: 64,
        heads: 1,
        batch: 1,
    };
    let clusters = 4;
    let dram_cfg = GpuConfig::virgo().to_fp32().with_clusters(clusters);
    let dsm_cfg = dram_cfg.clone().with_dsm_enabled();
    let dram = run(
        &dram_cfg,
        &virgo_kernels::build_flash_attention(&dram_cfg, shape),
        SimMode::FastForward,
    );
    let dsm = run(
        &dsm_cfg,
        &build_flash_attention_broadcast(&dsm_cfg, shape),
        SimMode::FastForward,
    );
    assert!(
        dsm.dram_bytes() < dram.dram_bytes(),
        "broadcast must cut DRAM traffic: {} vs {}",
        dsm.dram_bytes(),
        dram.dram_bytes()
    );
    assert!(dsm.dsm_bytes() > 0);
}

/// SplitMix64 property: across random transfer sequences, the fabric
/// conserves bytes — the machine total, the per-requester aggregates and the
/// per-link breakdown all account for exactly the submitted bytes, on both
/// topologies.
#[test]
fn random_transfer_sequences_conserve_bytes_per_link() {
    for (seed, config) in [
        (11u64, DsmConfig::enabled_default()),
        (12, DsmConfig::enabled_ring()),
        (13, DsmConfig::enabled_default()),
        (14, DsmConfig::enabled_ring()),
    ] {
        let mut rng = SplitMix64::new(seed);
        let clusters = 2 + (rng.next_below(7) as u32); // 2..=8
        let mut fabric = DsmFabric::new(config, clusters);
        let mut submitted = 0u64;
        let mut per_pair = vec![vec![0u64; clusters as usize]; clusters as usize];
        let mut now = 0u64;
        for _ in 0..200 {
            let from = rng.next_below(u64::from(clusters)) as u32;
            let to = rng.next_below(u64::from(clusters)) as u32;
            let bytes = 1 + rng.next_below(16 * 1024);
            now += rng.next_below(64);
            fabric.transfer(Cycle::new(now), from, to, bytes);
            submitted += bytes;
            per_pair[from as usize][to as usize] += bytes;
        }
        assert_eq!(fabric.stats().bytes, submitted, "seed {seed}");
        let per_cluster: u64 = fabric.per_cluster_stats().iter().map(|c| c.bytes).sum();
        assert_eq!(per_cluster, submitted, "seed {seed}");
        let per_link: u64 = fabric.per_link_stats().iter().map(|l| l.bytes).sum();
        assert_eq!(per_link, submitted, "seed {seed}");
        // The (requester, link) matrix matches the reference exactly.
        for (from, row) in per_pair.iter().enumerate() {
            for (to, &bytes) in row.iter().enumerate() {
                assert_eq!(
                    fabric.per_cluster_stats()[from].per_link[to].bytes,
                    bytes,
                    "seed {seed} pair {from}->{to}"
                );
            }
        }
        // Hop-flit accounting is at least one flit-hop per transfer and, on
        // the crossbar, exactly bytes rounded up to flits.
        assert!(fabric.stats().hop_flits >= fabric.stats().transfers);
        // Draining everything leaves the fabric quiescent.
        fabric.tick(Cycle::new(now + 10_000_000));
        assert!(fabric.quiescent());
        assert_eq!(fabric.delivered(), 200);
    }
}

/// The report snapshot round-trips the DSM counters bit-exactly (cache
/// entries from a DSM run rehydrate with their fabric stats intact).
#[test]
fn dsm_report_snapshot_roundtrips() {
    let config = GpuConfig::virgo().with_clusters(2).with_dsm_enabled();
    let kernel = build_split_k_gemm(
        &config,
        GemmShape {
            m: 128,
            n: 64,
            k: 256,
        },
    );
    let report = run(&config, &kernel, SimMode::FastForward);
    assert!(report.dsm_bytes() > 0);
    let key = virgo::SimKey::digest(&config, &kernel, MAX_CYCLES, SimMode::FastForward).to_hex();
    let text = report.to_cache_json(&key);
    let back = SimReport::from_cache_json(&text, &key).expect("snapshot parses");
    assert_eq!(format!("{report:?}"), format!("{back:?}"));
    assert_eq!(back.dsm_stats(), report.dsm_stats());
    assert_eq!(back.dsm_link_stats(), report.dsm_link_stats());
}
