//! Cross-crate integration tests of the energy/power accounting, including
//! randomized property tests of the ledger invariants.
//!
//! The property tests draw their cases from the workspace's own
//! deterministic [`SplitMix64`] generator (the environment has no registry
//! access, so an external property-testing framework is not an option); every
//! run exercises the same seeded case set, keeping failures reproducible.

use virgo::{DesignKind, Gpu, GpuConfig};
use virgo_energy::{Component, EnergyEvent, EnergyLedger, EnergyTable, PowerReport};
use virgo_kernels::{build_gemm, GemmShape};
use virgo_sim::SplitMix64;
use virgo_sim::{Cycle, Frequency};

fn run(design: DesignKind, n: u32) -> virgo::SimReport {
    let config = GpuConfig::for_design(design);
    let kernel = build_gemm(&config, GemmShape::square(n));
    Gpu::new(config)
        .run(&kernel, 200_000_000)
        .unwrap_or_else(|e| panic!("{design}: {e}"))
}

#[test]
fn component_energies_sum_to_total() {
    for design in DesignKind::all() {
        let report = run(design, 128);
        let sum: f64 = report
            .power()
            .energy_breakdown_uj()
            .iter()
            .map(|(_, e)| e)
            .sum();
        let total = report.power().total_energy_uj();
        assert!(
            (sum - total).abs() < 1e-6 * total.max(1.0),
            "{design}: sum {sum} vs total {total}"
        );
    }
}

#[test]
fn power_is_energy_divided_by_runtime() {
    let report = run(DesignKind::Virgo, 128);
    let expected = report.power().total_energy_uj() / report.runtime_seconds() * 1e-3;
    assert!((report.active_power_mw() - expected).abs() < 1e-6 * expected);
}

#[test]
fn virgo_core_energy_is_far_below_the_core_coupled_designs() {
    // The central energy claim of the paper: the savings come from the SIMT
    // core (instruction processing + register file), not the matrix unit.
    let ampere = run(DesignKind::AmpereStyle, 256);
    let virgo = run(DesignKind::Virgo, 256);
    assert!(
        virgo.power().core_energy_uj() < ampere.power().core_energy_uj() * 0.2,
        "virgo core {} uJ vs ampere core {} uJ",
        virgo.power().core_energy_uj(),
        ampere.power().core_energy_uj()
    );
    // Matrix-unit energy stays in the same ballpark across designs
    // (Figure 11): within 2x of each other.
    let v = virgo.power().matrix_total_energy_uj();
    let a = ampere.power().matrix_total_energy_uj();
    assert!(v < a * 2.0 && a < v * 2.0, "virgo {v} uJ vs ampere {a} uJ");
}

#[test]
fn virgo_total_energy_beats_every_baseline() {
    let virgo = run(DesignKind::Virgo, 256).total_energy_mj();
    for design in [
        DesignKind::VoltaStyle,
        DesignKind::AmpereStyle,
        DesignKind::HopperStyle,
    ] {
        let baseline = run(design, 256).total_energy_mj();
        assert!(
            virgo < baseline,
            "virgo {virgo} mJ must be below {design} {baseline} mJ"
        );
    }
}

/// Merging ledgers is additive: energy(a ∪ b) = energy(a) + energy(b).
#[test]
fn ledger_merge_is_additive() {
    let table = EnergyTable::default_16nm();
    let events = [
        EnergyEvent::InstrIssued,
        EnergyEvent::RegRead,
        EnergyEvent::SmemWordAccess,
        EnergyEvent::MacSystolic,
    ];
    let mut rng = SplitMix64::new(0x1ED6E2);
    for _ in 0..128 {
        let counts: Vec<u64> = (0..8).map(|_| rng.next_below(10_000)).collect();
        let mut a = EnergyLedger::new();
        let mut b = EnergyLedger::new();
        for (i, &count) in counts.iter().enumerate() {
            let event = events[i % events.len()];
            let component = if i % 2 == 0 {
                Component::CoreIssue
            } else {
                Component::MatrixUnit
            };
            if i < counts.len() / 2 {
                a.record(component, event, count);
            } else {
                b.record(component, event, count);
            }
        }
        let ea = a.total_energy_pj(&table);
        let eb = b.total_energy_pj(&table);
        let mut merged = a.clone();
        merged.merge(&b);
        assert!((merged.total_energy_pj(&table) - (ea + eb)).abs() < 1e-6);
    }
}

/// Active power scales inversely with runtime for a fixed ledger.
#[test]
fn power_scales_inversely_with_cycles() {
    let table = EnergyTable::default_16nm();
    let mut rng = SplitMix64::new(0x70DE12);
    for _ in 0..128 {
        let count = 1 + rng.next_below(999_999);
        let cycles = 1 + rng.next_below(9_999_999);
        let mut ledger = EnergyLedger::new();
        ledger.record(Component::CoreIssue, EnergyEvent::InstrIssued, count);
        let short =
            PowerReport::from_ledger(&ledger, &table, Cycle::new(cycles), Frequency::VIRGO_SOC);
        let long = PowerReport::from_ledger(
            &ledger,
            &table,
            Cycle::new(cycles * 2),
            Frequency::VIRGO_SOC,
        );
        assert!((short.total_energy_uj() - long.total_energy_uj()).abs() < 1e-9);
        assert!(
            (short.active_power_mw() - 2.0 * long.active_power_mw()).abs()
                < 1e-6 * short.active_power_mw(),
            "count {count} cycles {cycles}"
        );
    }
}

/// Energy is monotone in event counts: recording more events never reduces
/// any component's energy.
#[test]
fn energy_is_monotone_in_counts() {
    let table = EnergyTable::default_16nm();
    let mut rng = SplitMix64::new(0x3A57E0);
    for _ in 0..256 {
        let base = rng.next_below(100_000);
        let extra = 1 + rng.next_below(99_999);
        let mut small = EnergyLedger::new();
        small.record(Component::SharedMem, EnergyEvent::SmemWordAccess, base);
        let mut large = EnergyLedger::new();
        large.record(
            Component::SharedMem,
            EnergyEvent::SmemWordAccess,
            base + extra,
        );
        assert!(
            large.component_energy_pj(&table, Component::SharedMem)
                > small.component_energy_pj(&table, Component::SharedMem) - 1e-9,
            "base {base} extra {extra}"
        );
    }
}
