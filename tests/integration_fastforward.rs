//! Fast-forward equivalence: the cycle-skipping driver must produce
//! **bit-identical** reports to the naive one-cycle-at-a-time reference loop
//! on every design point and workload class.
//!
//! This is the contract that makes `SimMode::FastForward` safe to use as the
//! default everywhere: cycles, instruction counts, the full per-core cycle
//! classification (active/stall/idle/fence), per-component energy and MAC
//! utilization all come out of the same event counters, so a single digest
//! comparison covers the paper's entire metric surface.

use std::sync::Arc;

use virgo::{DesignKind, Gpu, GpuConfig, SimError, SimMode};
use virgo_bench::{run_flash_attention_with_mode, run_gemm_with_mode, ReportDigest};
use virgo_isa::{
    AddrExpr, DataType, DeviceId, DmaCopyCmd, Kernel, KernelInfo, LaneAccess, MemLoc, MmioCommand,
    ProgramBuilder, WarpAssignment, WarpOp,
};
use virgo_kernels::GemmShape;

/// Every design point, on a representative GEMM, in both modes.
#[test]
fn gemm_reports_are_bit_identical_across_modes_and_designs() {
    let shape = GemmShape {
        m: 128,
        n: 128,
        k: 128,
    };
    for design in DesignKind::all() {
        let naive = ReportDigest::of(&run_gemm_with_mode(design, shape, SimMode::Naive));
        let fast = ReportDigest::of(&run_gemm_with_mode(design, shape, SimMode::FastForward));
        assert_eq!(naive, fast, "{design} GEMM digests diverge");
        assert!(naive.cycles > 0 && naive.performed_macs > 0, "{design}");
    }
}

/// The FlashAttention-3 mapping (FP32) on the two designs the paper maps it
/// to, in both modes.
#[test]
fn flash_attention_reports_are_bit_identical_across_modes() {
    for design in [DesignKind::AmpereStyle, DesignKind::Virgo] {
        let naive = ReportDigest::of(&run_flash_attention_with_mode(design, SimMode::Naive));
        let fast = ReportDigest::of(&run_flash_attention_with_mode(design, SimMode::FastForward));
        assert_eq!(naive, fast, "{design} FlashAttention digests diverge");
        assert!(naive.fence_wait_cycles > 0 || naive.cycles > 0, "{design}");
    }
}

/// A synthetic kernel chosen to stress every bulk-accounting path at once:
/// fence spins (rate-limited poll accounting), DMA waits, load waits with the
/// program cursor drained, and cross-core barriers.
#[test]
fn stall_heavy_mixed_kernel_is_bit_identical() {
    let program = {
        let mut b = ProgramBuilder::new();
        b.repeat(4, |b| {
            let cmd = MmioCommand::DmaCopy(DmaCopyCmd::new(
                MemLoc::global(0u64),
                MemLoc::shared(0u64),
                64 * 1024,
            ));
            b.op(WarpOp::MmioWrite {
                device: DeviceId::DMA0,
                cmd,
            });
            b.op(WarpOp::FenceAsync { max_outstanding: 0 });
            b.op(WarpOp::Barrier { id: 0 });
            let access = LaneAccess::contiguous_words(AddrExpr::fixed(0), 8);
            b.op(WarpOp::LoadGlobal { access });
            b.op(WarpOp::WaitLoads);
        });
        // Trailing load with no WaitLoads: the warp drains its program while
        // loads are still in flight, exercising the stall-classification path
        // of the fast-forward accounting.
        let access = LaneAccess::contiguous_words(AddrExpr::fixed(4096), 8);
        b.op(WarpOp::LoadGlobal { access });
        Arc::new(b.build())
    };
    let kernel = Kernel::new(
        KernelInfo::new("stall-mix", 0, DataType::Fp16),
        vec![
            WarpAssignment::new(0, 0, Arc::clone(&program)),
            WarpAssignment::new(1, 0, Arc::clone(&program)),
        ],
    );
    let config = GpuConfig::virgo();
    let naive = Gpu::new(config.clone())
        .run_with_mode(&kernel, 10_000_000, SimMode::Naive)
        .expect("naive finishes");
    let fast = Gpu::new(config)
        .run_with_mode(&kernel, 10_000_000, SimMode::FastForward)
        .expect("fast-forward finishes");
    let naive = ReportDigest::of(&naive);
    let fast = ReportDigest::of(&fast);
    assert_eq!(naive, fast);
    // The kernel really did spend most of its life stalled — otherwise this
    // test is not exercising what it claims to.
    assert!(naive.fence_wait_cycles > 0);
    assert!(naive.fence_poll_instructions > 0);
    assert!(naive.core_stats.idle_cycles + naive.core_stats.stall_cycles > naive.cycles / 2);
}

/// Deadlocks time out identically in both modes — and the fast-forward
/// driver reaches the verdict without ticking through the budget.
#[test]
fn deadlock_times_out_identically_in_both_modes() {
    let mut b = ProgramBuilder::new();
    b.op(WarpOp::Barrier { id: 0 });
    let lonely = Kernel::new(
        KernelInfo::new("deadlock", 0, DataType::Fp16),
        vec![
            WarpAssignment::new(0, 0, Arc::new(b.build())),
            WarpAssignment::new(0, 1, Arc::new(ProgramBuilder::new().build())),
        ],
    );
    // A budget this size would take minutes in the naive loop; the
    // fast-forward driver must resolve it near-instantly.
    let budget = 500_000_000;
    let mut gpu = Gpu::new(GpuConfig::virgo());
    let fast = gpu
        .run_with_mode(&lonely, budget, SimMode::FastForward)
        .unwrap_err();
    // The naive reference at a budget it can afford.
    let naive = gpu
        .run_with_mode(&lonely, 5_000, SimMode::Naive)
        .unwrap_err();
    for (err, limit) in [(&fast, budget), (&naive, 5_000)] {
        let SimError::Timeout {
            limit: l,
            diagnosis,
        } = err
        else {
            panic!("expected a timeout, got {err:?}");
        };
        assert_eq!(*l, limit);
        // The structured diagnosis identifies the lonely warp at its barrier
        // identically in both modes — no tracing re-run needed.
        assert_eq!(
            diagnosis.warps,
            [virgo::WarpDiagnosis {
                cluster: 0,
                core: 0,
                warp: 0,
                blocked_on: virgo::BlockedOn::Barrier { id: 0 },
            }]
        );
    }
}

/// The heterogeneous dual-matrix-unit configuration (Section 6.3) also holds
/// the invariant — two Gemmini units with different shapes plus DMA traffic.
#[test]
fn heterogeneous_configuration_is_bit_identical() {
    let config = GpuConfig::virgo_heterogeneous();
    let kernel = virgo_kernels::build_heterogeneous_parallel(&config);
    let naive = Gpu::new(config.clone())
        .run_with_mode(&kernel, 200_000_000, SimMode::Naive)
        .expect("naive finishes");
    let fast = Gpu::new(config)
        .run_with_mode(&kernel, 200_000_000, SimMode::FastForward)
        .expect("fast-forward finishes");
    assert_eq!(ReportDigest::of(&naive), ReportDigest::of(&fast));
}
