//! Fault-injection and resilience invariants.
//!
//! Four guarantees anchor the fault tentpole:
//!
//! 1. **Faults-off bit-identity** — a config carrying an *empty*
//!    [`FaultPlan`] (any seed) produces reports bit-identical to the
//!    pre-fault machine on every design point: the fault layer's presence
//!    perturbs nothing. (The pre-fault fingerprints themselves are pinned in
//!    `integration_clusters.rs` and must keep passing unchanged.)
//! 2. **Deterministic degradation** — the same seeded plan produces the
//!    same [`FaultStats`] and the same report digest on every run, and
//!    `SimMode::Naive` and `SimMode::FastForward` stay bit-identical with
//!    faults active (link kills, throttles, ECC upsets, late starts).
//! 3. **Degraded-mode survival** — the acceptance scenario: the N = 8
//!    split-K GEMM on the ring fabric completes after a DSM link is killed
//!    mid-run, rerouting around the dead segment at ≤ 2.5× the clean cycle
//!    count; a dead DRAM channel re-stripes onto the survivors.
//! 4. **Self-healing sweeps** — a sweep point whose kernel build panics is
//!    retried and then quarantined as a structured [`SweepError`] without
//!    hanging the pool or reordering the surviving results.

use virgo::DesignKind;
use virgo::{FaultKind, FaultPlan, FaultStats, Gpu, GpuConfig, SimError, SimMode, SimReport};
use virgo_bench::ReportDigest;
use virgo_isa::Kernel;
use virgo_kernels::{build_gemm, build_split_k_gemm, AttentionShape, GemmShape};
use virgo_mem::DsmConfig;
use virgo_sim::fault::PERMANENT;
use virgo_sweep::{Query, SweepPool, SweepService};

const MAX_CYCLES: u64 = 200_000_000;

fn run(config: &GpuConfig, kernel: &Kernel, mode: SimMode) -> SimReport {
    Gpu::new(config.clone())
        .run_with_mode(kernel, MAX_CYCLES, mode)
        .unwrap_or_else(|e| panic!("{} must finish: {e}", kernel.info.name))
}

fn small_gemm() -> GemmShape {
    GemmShape {
        m: 128,
        n: 128,
        k: 128,
    }
}

fn splitk_shape() -> GemmShape {
    GemmShape {
        m: 256,
        n: 256,
        k: 512,
    }
}

/// A plan exercising every fault kind at once, all windows finite.
fn rich_plan() -> FaultPlan {
    FaultPlan::seeded(0x5EED)
        .with_event(
            FaultKind::DsmLinkSlow {
                link: 1,
                bandwidth_divisor: 4,
            },
            1_000,
            40_000,
        )
        .with_event(
            FaultKind::DramChannelThrottle {
                channel: 0,
                latency_multiplier: 3,
            },
            2_000,
            30_000,
        )
        .with_event(
            FaultKind::EccSingleBit {
                cluster: 0,
                mean_access_gap: 64,
            },
            0,
            25_000,
        )
        .with_event(
            FaultKind::EccDoubleBit {
                cluster: 1,
                mean_access_gap: 512,
            },
            5_000,
            20_000,
        )
        .with_event(FaultKind::LateClusterStart { cluster: 3 }, 0, 4_000)
}

/// An empty fault plan — even one with a non-zero seed — leaves every
/// design point's report bit-identical to the pre-fault machine.
#[test]
fn empty_fault_plan_is_bit_identical_on_every_design() {
    for design in DesignKind::all() {
        let clean = GpuConfig::for_design(design);
        let armed = clean.clone().with_faults(FaultPlan::seeded(0xDEAD_BEEF));
        let kernel = build_gemm(&clean, small_gemm());
        let baseline = ReportDigest::of(&run(&clean, &kernel, SimMode::FastForward));
        let report = run(&armed, &kernel, SimMode::FastForward);
        assert_eq!(
            ReportDigest::of(&report),
            baseline,
            "{design}: an empty fault plan must not perturb the machine"
        );
        assert_eq!(
            *report.fault_stats(),
            FaultStats::default(),
            "{design}: no fault counters without fault events"
        );
        assert!(!report.faults_injected());
    }
}

/// The same seeded plan produces identical fault stats and digests across
/// repeated runs and across driver modes — the determinism contract.
#[test]
fn seeded_fault_plan_is_deterministic_across_runs_and_modes() {
    let config = GpuConfig::virgo()
        .with_clusters(4)
        .with_dsm(DsmConfig::enabled_ring())
        .with_dram_channels(2)
        .with_faults(rich_plan());
    let kernel = build_split_k_gemm(&config, splitk_shape());

    let naive = run(&config, &kernel, SimMode::Naive);
    let fast = run(&config, &kernel, SimMode::FastForward);
    let again = run(&config, &kernel, SimMode::FastForward);

    assert_eq!(
        ReportDigest::of(&naive),
        ReportDigest::of(&fast),
        "fault-active runs must stay bit-identical across modes"
    );
    assert_eq!(
        naive.fault_stats(),
        fast.fault_stats(),
        "fault counters must agree across modes"
    );
    assert_eq!(
        fast.fault_stats(),
        again.fault_stats(),
        "repeated runs must reproduce the same fault stats"
    );
    assert!(fast.faults_injected());
    assert!(
        fast.fault_stats().degraded_cycles > 0,
        "the plan's windows overlap the run"
    );
}

/// ECC upsets land only in the clusters their windows name, single-bit
/// upsets are corrected, and double-bit upsets are detected but not.
#[test]
fn ecc_upsets_are_scoped_corrected_and_counted() {
    let config = GpuConfig::virgo()
        .with_clusters(4)
        .with_dsm(DsmConfig::enabled_ring())
        .with_faults(
            FaultPlan::seeded(7)
                .with_event(
                    FaultKind::EccSingleBit {
                        cluster: 1,
                        mean_access_gap: 32,
                    },
                    0,
                    PERMANENT,
                )
                .with_event(
                    FaultKind::EccDoubleBit {
                        cluster: 2,
                        mean_access_gap: 64,
                    },
                    0,
                    PERMANENT,
                ),
        );
    let kernel = build_split_k_gemm(&config, splitk_shape());
    let report = run(&config, &kernel, SimMode::FastForward);

    let per_cluster: Vec<_> = report.per_cluster().iter().map(|c| c.fault).collect();
    assert!(
        per_cluster[1].corrected > 0,
        "cluster 1's single-bit upsets are corrected in place"
    );
    assert_eq!(
        per_cluster[1].corrected, per_cluster[1].detected,
        "every single-bit upset is both detected and corrected"
    );
    assert!(
        per_cluster[2].detected > 0 && per_cluster[2].corrected == 0,
        "cluster 2's double-bit upsets are detected but uncorrectable"
    );
    for quiet in [0usize, 3] {
        assert_eq!(
            per_cluster[quiet].detected, 0,
            "cluster {quiet} has no ECC window and must see no upsets"
        );
    }
    let total = report.fault_stats();
    assert_eq!(
        total.detected,
        per_cluster.iter().map(|c| c.detected).sum::<u64>(),
        "machine totals are the sum of the cluster slices"
    );
}

/// A cluster held in reset by a late-start fault begins work only when its
/// window closes, identically in both driver modes.
#[test]
fn late_cluster_start_delays_work_identically_across_modes() {
    let base = GpuConfig::virgo()
        .with_clusters(2)
        .with_dsm(DsmConfig::enabled_ring());
    let held = base.clone().with_faults(FaultPlan::seeded(1).with_event(
        FaultKind::LateClusterStart { cluster: 1 },
        0,
        10_000,
    ));
    let kernel = build_split_k_gemm(&base, splitk_shape());

    let clean = run(&base, &kernel, SimMode::FastForward);
    let naive = run(&held, &kernel, SimMode::Naive);
    let fast = run(&held, &kernel, SimMode::FastForward);

    assert_eq!(
        ReportDigest::of(&naive),
        ReportDigest::of(&fast),
        "late-start runs must stay bit-identical across modes"
    );
    assert!(
        fast.cycles().get() > 10_000,
        "the held cluster cannot finish before its release"
    );
    // Note: the held machine may finish in *fewer or more* total cycles than
    // the clean one — delaying a cluster also reshuffles DRAM/DSM
    // contention — so only the work done is comparable, not the cycle count.
    assert_eq!(
        ReportDigest::of(&clean).performed_macs,
        ReportDigest::of(&fast).performed_macs,
        "the held cluster still performs all of its work after release"
    );
}

/// The acceptance scenario: N = 8 split-K GEMM on the ring, one DSM link
/// killed mid-run. The machine completes by rerouting the long way around,
/// within 2.5x the clean run's cycles, bit-identically across modes.
#[test]
fn ring_link_kill_mid_run_completes_within_overhead_budget() {
    let base = GpuConfig::virgo()
        .with_clusters(8)
        .with_dsm(DsmConfig::enabled_ring());
    // K-heavy shape: eight clusters need at least eight K-tiles.
    let kernel = build_split_k_gemm(
        &base,
        GemmShape {
            m: 256,
            n: 256,
            k: 1024,
        },
    );
    let clean = run(&base, &kernel, SimMode::FastForward);

    let kill_at = clean.cycles().get() / 4;
    let wounded = base
        .clone()
        .with_faults(FaultPlan::seeded(0xFA17).with_event(
            FaultKind::DsmLinkDown { link: 2 },
            kill_at,
            PERMANENT,
        ));
    let fast = run(&wounded, &kernel, SimMode::FastForward);
    let naive = run(&wounded, &kernel, SimMode::Naive);

    assert_eq!(
        ReportDigest::of(&naive),
        ReportDigest::of(&fast),
        "the degraded machine must stay bit-identical across modes"
    );
    assert!(
        fast.fault_stats().dsm_rerouted_transfers > 0,
        "traffic crossing the dead segment must detour the long way around"
    );
    let overhead = fast.cycles().get() as f64 / clean.cycles().get() as f64;
    assert!(
        overhead <= 2.5,
        "losing one of eight ring links costs {overhead:.2}x cycles (limit 2.5x)"
    );
    assert_eq!(
        ReportDigest::of(&clean).performed_macs,
        ReportDigest::of(&fast).performed_macs,
        "the degraded run still computes the full GEMM"
    );
}

/// A dead DRAM channel re-stripes its traffic across the survivors; the
/// machine completes with the same work done.
#[test]
fn dram_channel_outage_restripes_across_survivors() {
    let base = GpuConfig::virgo().with_dram_channels(4);
    let kernel = build_gemm(&base, small_gemm());
    let clean = run(&base, &kernel, SimMode::FastForward);

    let wounded = base.clone().with_faults(FaultPlan::seeded(2).with_event(
        FaultKind::DramChannelDown { channel: 1 },
        0,
        PERMANENT,
    ));
    let fast = run(&wounded, &kernel, SimMode::FastForward);
    let naive = run(&wounded, &kernel, SimMode::Naive);

    assert_eq!(
        ReportDigest::of(&naive),
        ReportDigest::of(&fast),
        "channel-outage runs must stay bit-identical across modes"
    );
    assert!(
        fast.fault_stats().dram_restriped_accesses > 0,
        "traffic striped onto the dead channel must move to the survivors"
    );
    assert_eq!(
        ReportDigest::of(&clean).performed_macs,
        ReportDigest::of(&fast).performed_macs,
        "the re-striped run still computes the full GEMM"
    );
}

/// An undersized cycle budget with faults active is diagnosed as slow
/// progress, and the diagnosis folds the live fault windows in.
#[test]
fn timeout_diagnosis_reports_active_fault_windows() {
    let config = GpuConfig::virgo().with_faults(FaultPlan::seeded(3).with_event(
        FaultKind::DramChannelThrottle {
            channel: 0,
            latency_multiplier: 8,
        },
        0,
        PERMANENT,
    ));
    let kernel = build_gemm(&config, small_gemm());
    let err = Gpu::new(config)
        .run_with_mode(&kernel, 50, SimMode::FastForward)
        .expect_err("a 50-cycle budget cannot finish a 128^3 GEMM");
    let SimError::Timeout { diagnosis, .. } = err else {
        panic!("expected a timeout, got {err}");
    };
    assert_eq!(diagnosis.active_fault_windows, 1);
    let rendered = diagnosis.to_string();
    assert!(
        rendered.contains("1 injected fault window(s) active"),
        "diagnosis must surface the live fault windows: {rendered}"
    );
}

/// Chaos smoke for the self-healing sweep pool: persistently panicking jobs
/// are retried and quarantined; surviving results keep submission order.
#[test]
fn sweep_pool_quarantines_panics_without_reordering() {
    let pool = SweepPool::new(4);
    let results = pool.try_map((0..16u64).collect::<Vec<_>>(), |n| {
        assert!(n % 5 != 3, "poisoned item {n}");
        n * 10
    });
    assert_eq!(results.len(), 16);
    for (i, result) in results.iter().enumerate() {
        if i as u64 % 5 == 3 {
            let err = result.as_ref().expect_err("poisoned item must quarantine");
            assert_eq!(err.index, i);
            assert_eq!(err.attempts, SweepPool::MAX_ATTEMPTS);
            assert!(err.message.contains("poisoned item"));
        } else {
            assert_eq!(
                *result.as_ref().expect("healthy item must survive"),
                i as u64 * 10,
                "submission order must be preserved"
            );
        }
    }
}

/// The same resilience through the sweep service: a point whose kernel
/// build panics (FlashAttention on a Volta-style machine has no mapping)
/// is quarantined while the rest of the grid completes.
#[test]
fn sweep_service_survives_a_poisoned_grid_point() {
    let svc = SweepService::in_memory(2);
    let attention = AttentionShape {
        batch: 1,
        seq_len: 128,
        head_dim: 64,
        heads: 1,
    };
    let points = vec![
        Query::new(DesignKind::Virgo, small_gemm()),
        Query::new(DesignKind::VoltaStyle, attention),
        Query::new(DesignKind::AmpereStyle, small_gemm()),
    ];
    let outcomes = svc.try_run_all(&points);
    assert_eq!(outcomes.len(), 3);
    assert!(outcomes[0].is_ok() && outcomes[2].is_ok());
    let err = outcomes[1]
        .as_ref()
        .expect_err("poisoned point quarantines");
    assert_eq!(err.index, 1);
    assert!(
        outcomes[2].as_ref().unwrap().report.cycles().get() > 0,
        "grid points after the poisoned one still simulate"
    );
}
