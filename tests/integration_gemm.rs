//! Cross-crate integration tests: GEMM kernels running end-to-end on every
//! design point, checking the qualitative claims of the paper's evaluation
//! at reduced problem sizes (so the suite stays fast in debug builds).

use virgo::{DesignKind, Gpu, GpuConfig};
use virgo_kernels::{build_gemm, GemmShape};

/// Runs one GEMM on one design and returns the report.
fn run(design: DesignKind, n: u32) -> virgo::SimReport {
    let config = GpuConfig::for_design(design);
    let kernel = build_gemm(&config, GemmShape::square(n));
    Gpu::new(config)
        .run(&kernel, 200_000_000)
        .unwrap_or_else(|e| panic!("{design}: {e}"))
}

#[test]
fn all_designs_complete_a_small_gemm() {
    for design in DesignKind::all() {
        let report = run(design, 128);
        assert!(report.cycles().get() > 0, "{design}");
        assert_eq!(
            report.performed_macs(),
            128 * 128 * 128,
            "{design} must perform every MAC of the problem"
        );
    }
}

#[test]
fn utilization_ordering_matches_table3() {
    // Table 3's qualitative ordering: Virgo > Hopper-style > Ampere-style >=
    // Volta-style (at equal cluster MAC throughput).
    let volta = run(DesignKind::VoltaStyle, 256);
    let ampere = run(DesignKind::AmpereStyle, 256);
    let hopper = run(DesignKind::HopperStyle, 256);
    let virgo = run(DesignKind::Virgo, 256);

    let u = |r: &virgo::SimReport| r.mac_utilization().as_fraction();
    assert!(
        u(&virgo) > u(&hopper),
        "virgo {} vs hopper {}",
        u(&virgo),
        u(&hopper)
    );
    assert!(
        u(&hopper) > u(&ampere),
        "hopper {} vs ampere {}",
        u(&hopper),
        u(&ampere)
    );
    assert!(
        u(&ampere) >= u(&volta) * 0.95,
        "ampere {} should not be below volta {}",
        u(&ampere),
        u(&volta)
    );
    assert!(u(&virgo) > 0.5, "virgo utilization {}", u(&virgo));
}

#[test]
fn virgo_retires_a_tiny_fraction_of_instructions() {
    // Section 6.1.1: Virgo's larger operation granularity shrinks the
    // retired-instruction count by orders of magnitude.
    let volta = run(DesignKind::VoltaStyle, 256);
    let hopper = run(DesignKind::HopperStyle, 256);
    let virgo = run(DesignKind::Virgo, 256);
    let ratio_volta = virgo.instructions_retired() as f64 / volta.instructions_retired() as f64;
    let ratio_hopper = virgo.instructions_retired() as f64 / hopper.instructions_retired() as f64;
    assert!(
        ratio_volta < 0.02,
        "Virgo/Volta instruction ratio {ratio_volta}"
    );
    assert!(
        ratio_hopper < 0.15,
        "Virgo/Hopper instruction ratio {ratio_hopper}"
    );
}

#[test]
fn smem_footprint_ordering_matches_table4() {
    // Table 4: tightly-coupled > operand-decoupled > disaggregated.
    let ampere = run(DesignKind::AmpereStyle, 256);
    let hopper = run(DesignKind::HopperStyle, 256);
    let virgo = run(DesignKind::Virgo, 256);
    assert!(
        ampere.smem_read_footprint_bytes() > hopper.smem_read_footprint_bytes(),
        "tightly-coupled {} vs operand-decoupled {}",
        ampere.smem_read_footprint_bytes(),
        hopper.smem_read_footprint_bytes()
    );
    assert!(
        hopper.smem_read_footprint_bytes() > virgo.smem_read_footprint_bytes(),
        "operand-decoupled {} vs disaggregated {}",
        hopper.smem_read_footprint_bytes(),
        virgo.smem_read_footprint_bytes()
    );
    // Virgo's absolute footprint: A re-read once per 16-wide column block
    // plus B once, per 128x64x128 command (2.25 MiB in the paper).
    let mib = virgo.smem_read_footprint_bytes() as f64 / (1024.0 * 1024.0);
    assert!((1.5..3.5).contains(&mib), "virgo footprint {mib} MiB");
}

#[test]
fn utilization_improves_with_problem_size_on_virgo() {
    let small = run(DesignKind::Virgo, 128);
    let large = run(DesignKind::Virgo, 256);
    assert!(
        large.mac_utilization().as_fraction() > small.mac_utilization().as_fraction(),
        "larger GEMMs amortize prologue/epilogue overheads"
    );
}

#[test]
fn gemm_simulation_is_deterministic() {
    let a = run(DesignKind::Virgo, 128);
    let b = run(DesignKind::Virgo, 128);
    assert_eq!(a.cycles(), b.cycles());
    assert_eq!(a.instructions_retired(), b.instructions_retired());
    assert!((a.total_energy_mj() - b.total_energy_mj()).abs() < 1e-12);
}
