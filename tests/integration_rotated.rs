//! Distributed (rotated / interleaved) split-K reduction invariants.
//!
//! The rotated split-K tentpole distributes reduction ownership over all N
//! clusters so the partial-tile traffic uses every DSM ingress link instead
//! of funnelling into cluster 0. Three guarantees anchor it:
//!
//! 1. **Mode equivalence** — the distributed variants are bit-identical
//!    across `SimMode::Naive` and `SimMode::FastForward` at N ∈ {2, 4, 8},
//!    on both the DSM and the DRAM reduction path.
//! 2. **Conservation** — every ownership strategy ships exactly
//!    `(N - 1) x out_tiles` partial C tiles (SplitMix64-driven shapes): the
//!    rotation redistributes the reduction, it must not change its volume.
//! 3. **Distribution** — the rotated DSM path actually lands traffic on all
//!    N ingress links (per-owner attribution), where the contiguous kernel
//!    pins everything on link 0; the report's load-imbalance view exposes
//!    the difference.

use virgo::{Gpu, GpuConfig, SimMode, SimReport};
use virgo_bench::ReportDigest;
use virgo_isa::{Kernel, MmioCommand, PartitionStrategy, WarpOp};
use virgo_kernels::{
    build_flash_attention_interleaved, build_split_k_gemm, build_split_k_gemm_with_strategy,
    AttentionShape, GemmShape,
};

const MAX_CYCLES: u64 = 200_000_000;

fn run(config: &GpuConfig, kernel: &Kernel, mode: SimMode) -> SimReport {
    Gpu::new(config.clone())
        .run_with_mode(kernel, MAX_CYCLES, mode)
        .unwrap_or_else(|e| panic!("{} must finish: {e}", kernel.info.name))
}

/// A shape with enough K-tiles for the cluster count and a few output tiles
/// to rotate over.
fn shape_for(clusters: u32) -> GemmShape {
    GemmShape {
        m: 256,
        n: 256,
        k: if clusters > 4 { 1024 } else { 512 },
    }
}

/// Rotated and interleaved split-K are bit-identical across driver modes at
/// N ∈ {2, 4, 8}, on both reduction paths (the `mode_equivalence`-style pin
/// for the new kernels).
#[test]
fn distributed_split_k_is_bit_identical_across_modes() {
    for strategy in [PartitionStrategy::Rotated, PartitionStrategy::Interleaved] {
        for clusters in [2u32, 4, 8] {
            for dsm in [false, true] {
                // The DRAM path is covered at the small cluster counts; at
                // N = 8 it adds nothing new and doubles the slowest runs.
                if !dsm && clusters == 8 {
                    continue;
                }
                let mut config = GpuConfig::virgo().with_clusters(clusters);
                if dsm {
                    config = config.with_dsm_enabled();
                }
                let shape = shape_for(clusters);
                let kernel = build_split_k_gemm_with_strategy(&config, shape, strategy);
                let naive = ReportDigest::of(&run(&config, &kernel, SimMode::Naive));
                let fast = ReportDigest::of(&run(&config, &kernel, SimMode::FastForward));
                assert_eq!(
                    naive, fast,
                    "{strategy} split-K x{clusters} dsm={dsm} digests diverge across modes"
                );
                assert_eq!(naive.performed_macs, shape.mac_ops());
            }
        }
    }
}

/// The interleaved-loader K/V broadcast attention variant is bit-identical
/// across driver modes at N ∈ {2, 4}.
#[test]
fn interleaved_attention_is_bit_identical_across_modes() {
    let shape = AttentionShape {
        seq_len: 256,
        head_dim: 64,
        heads: 1,
        batch: 1,
    };
    for clusters in [2u32, 4] {
        let config = GpuConfig::virgo()
            .to_fp32()
            .with_clusters(clusters)
            .with_dsm_enabled();
        let kernel = build_flash_attention_interleaved(&config, shape);
        let naive = ReportDigest::of(&run(&config, &kernel, SimMode::Naive));
        let fast = ReportDigest::of(&run(&config, &kernel, SimMode::FastForward));
        assert_eq!(
            naive, fast,
            "interleaved attention x{clusters} digests diverge across modes"
        );
        assert!(naive.dsm_bytes > 0, "the broadcast must use the fabric");
    }
}

/// Counts the dynamic `DmaRemote` bytes across every warp of a kernel — the
/// total partial-tile volume a split-K schedule puts on the fabric.
fn total_remote_bytes(kernel: &Kernel) -> u64 {
    let mut total = 0u64;
    for warp in &kernel.warps {
        let mut cursor = warp.program.cursor();
        while let Some((_, op)) = cursor.next_op() {
            if let WarpOp::MmioWrite {
                cmd: MmioCommand::DmaRemote(copy),
                ..
            } = op
            {
                total += copy.bytes;
            }
        }
    }
    total
}

/// SplitMix64 property: over random shapes and cluster counts, rotated and
/// interleaved ownership conserve the total reduced bytes — exactly the
/// contiguous baseline's `(N - 1) x out_tiles` partial C tiles, no more, no
/// fewer.
#[test]
fn rotated_ownership_conserves_reduced_bytes() {
    let mut rng = virgo_sim::SplitMix64::new(0x5eed_0008);
    for _ in 0..12 {
        let clusters = 2 + (rng.next_below(4) as u32); // 2..=5
        let tiles_m = 1 + rng.next_below(4); // 1..=4 x 128
        let tiles_n = 1 + rng.next_below(4); // 1..=4 x 64
        let kt = u64::from(clusters) + rng.next_below(8); // >= clusters
        let shape = GemmShape {
            m: (tiles_m * 128) as u32,
            n: (tiles_n * 64) as u32,
            k: (kt * 128) as u32,
        };
        let config = GpuConfig::virgo()
            .with_clusters(clusters)
            .with_dsm_enabled();
        let out_tiles = tiles_m * tiles_n;
        let c_tile_bytes = 128 * 64 * 4;
        let expected = u64::from(clusters - 1) * out_tiles * c_tile_bytes;

        let contiguous = total_remote_bytes(&build_split_k_gemm(&config, shape));
        assert_eq!(contiguous, expected, "contiguous {shape} x{clusters}");
        for strategy in [PartitionStrategy::Rotated, PartitionStrategy::Interleaved] {
            let distributed =
                total_remote_bytes(&build_split_k_gemm_with_strategy(&config, shape, strategy));
            assert_eq!(
                distributed, expected,
                "{strategy} {shape} x{clusters} must conserve the reduction volume"
            );
        }
    }
}

/// The rotated DSM path lands partial-tile traffic on every ingress link and
/// the report's load-imbalance view sees the spread collapse from N (all
/// ingress on cluster 0) to ~1 (balanced).
#[test]
fn rotated_reduction_uses_every_ingress_link() {
    let clusters = 4u32;
    let config = GpuConfig::virgo()
        .with_clusters(clusters)
        .with_dsm_enabled();
    let shape = shape_for(clusters);

    let contiguous = run(
        &config,
        &build_split_k_gemm(&config, shape),
        SimMode::FastForward,
    );
    let rotated = run(
        &config,
        &build_split_k_gemm_with_strategy(&config, shape, PartitionStrategy::Rotated),
        SimMode::FastForward,
    );

    // Same fabric volume, radically different placement.
    assert_eq!(contiguous.dsm_bytes(), rotated.dsm_bytes());
    let contiguous_links = contiguous.dsm_link_stats();
    assert!(contiguous_links[0].bytes > 0);
    assert_eq!(
        contiguous_links[1..].iter().map(|l| l.bytes).sum::<u64>(),
        0,
        "the contiguous kernel funnels all ingress into cluster 0"
    );
    for (c, link) in rotated.dsm_link_stats().iter().enumerate() {
        assert!(
            link.bytes > 0,
            "rotated link {c} must carry ingress traffic"
        );
    }

    // The load-imbalance metric attributes the win: all-to-one shows the
    // maximal spread N, the rotation sits within a tile of balanced.
    let before = contiguous.load_imbalance();
    let after = rotated.load_imbalance();
    assert_eq!(before.dsm_ingress_spread, f64::from(clusters));
    assert!(
        after.dsm_ingress_spread < 1.5,
        "rotated ingress spread {} should be near 1.0",
        after.dsm_ingress_spread
    );
    assert!(after.dsm_ingress_spread >= 1.0);

    // Fewer cycles: the reduction no longer serializes on one port.
    assert!(
        rotated.cycles() < contiguous.cycles(),
        "rotated {:?} must beat contiguous {:?}",
        rotated.cycles(),
        contiguous.cycles()
    );
}
