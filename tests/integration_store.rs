//! Integration tests of the shared report store: two sweep services sharing
//! one `virgo-store` server must answer with exactly the bits a store-less
//! service computes — including while other clients die mid-PUT — and a
//! killed store must degrade to local compute, not wrong answers.

use std::io::Write;
use std::net::TcpStream;

use virgo::{DesignKind, SimMode};
use virgo_bench::ReportDigest;
use virgo_kernels::GemmShape;
use virgo_sim::SplitMix64;
use virgo_store::protocol::{checksum64, key_field, Opcode, MAGIC};
use virgo_store::{EntryDir, StoreHandle, StoreServer};
use virgo_sweep::{Query, ReportCache, StoreConfig, SweepPool, SweepService, DEFAULT_MAX_CYCLES};

fn small_shape() -> GemmShape {
    GemmShape {
        m: 128,
        n: 128,
        k: 128,
    }
}

/// An in-process store server on an ephemeral port over a fresh temp dir.
fn spawn_store(tag: &str) -> (StoreHandle, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("virgo-store-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = StoreServer::bind("127.0.0.1:0", EntryDir::new(&dir))
        .expect("bind ephemeral store")
        .spawn()
        .expect("spawn store server");
    (handle, dir)
}

/// A process-equivalent service: empty memory layer over the remote store
/// only, so every hit provably crossed the wire.
fn remote_service(addr: &str) -> SweepService {
    SweepService::new(
        SweepPool::new(2),
        ReportCache::from_config(
            &StoreConfig::in_memory(256).with_remote_addr(Some(addr.to_string())),
        ),
        DEFAULT_MAX_CYCLES,
    )
}

/// A store-less reference service.
fn local_service() -> SweepService {
    SweepService::new(
        SweepPool::new(2),
        ReportCache::in_memory(256),
        DEFAULT_MAX_CYCLES,
    )
}

/// Simulates a client killed mid-PUT: hand-writes a PUT frame header that
/// promises `promised` payload bytes, sends half of them, and vanishes.
fn drop_connection_mid_put(addr: std::net::SocketAddr, key_hex: &str, promised: usize) {
    let junk = vec![b'x'; promised];
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    raw.write_all(&MAGIC.to_le_bytes()).unwrap();
    raw.write_all(&[Opcode::Put as u8]).unwrap();
    raw.write_all(&key_field(key_hex)).unwrap();
    raw.write_all(&(promised as u32).to_le_bytes()).unwrap();
    raw.write_all(&checksum64(&junk).to_le_bytes()).unwrap();
    raw.write_all(&junk[..promised / 2]).unwrap();
    drop(raw);
}

/// The tentpole acceptance: a service warms the store, then a *fresh*
/// service (empty memory, no disk) answers the whole grid from the store —
/// zero simulator executions — with bit-identical reports.
#[test]
fn warmed_store_serves_a_fresh_service_with_zero_executions() {
    let (mut store, dir) = spawn_store("warm");
    let addr = store.addr().to_string();
    let shape = small_shape();
    let grid: Vec<Query> = DesignKind::all()
        .into_iter()
        .flat_map(|design| {
            [1u32, 2]
                .into_iter()
                .map(move |n| Query::new(design, shape).clusters(n))
        })
        .collect();

    let warmer = remote_service(&addr);
    let cold = warmer.run_all(&grid);
    assert!(cold.iter().all(|o| !o.from_cache), "store starts empty");
    assert_eq!(warmer.cache_stats().store_unreachable, 0);

    let fresh = remote_service(&addr);
    let served = fresh.run_all(&grid);
    assert!(
        served.iter().all(|o| o.from_cache),
        "the fresh service must answer entirely from the store"
    );
    let stats = fresh.cache_stats();
    assert_eq!(stats.remote_hits, grid.len() as u64);
    assert_eq!(stats.misses, 0, "zero simulator executions");
    for (a, b) in cold.iter().zip(&served) {
        assert_eq!(
            ReportDigest::of(&a.report),
            ReportDigest::of(&b.report),
            "{}: store round-trip changed the report",
            b.query
        );
    }

    store.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Property-style test: for pseudo-random points, two services sharing one
/// store return bit-identical digests to a store-less service — while other
/// clients keep dying mid-PUT on the same server.
#[test]
fn shared_store_answers_match_a_storeless_service_under_churn() {
    let (mut store, dir) = spawn_store("churn");
    let addr = store.addr().to_string();
    let writer = remote_service(&addr);
    let reader = remote_service(&addr);
    let reference = local_service();

    let mut rng = SplitMix64::new(0x0005_704E_CAFE);
    let designs = DesignKind::all();
    let mut drops = 0u64;
    let mut seen = std::collections::HashSet::new();
    for trial in 0..6 {
        let design = designs[rng.next_below(designs.len() as u64) as usize];
        let clusters = [1u32, 2][rng.next_below(2) as usize];
        let mode = if rng.next_below(2) == 0 {
            SimMode::FastForward
        } else {
            SimMode::Naive
        };
        let query = Query::new(design, small_shape())
            .clusters(clusters)
            .mode(mode);

        // Churn: between real operations another "client" dies mid-PUT,
        // promising this very key so a desynced server would poison it.
        let key_hex = writer.key_for(&query).to_hex();
        if rng.next_below(2) == 0 {
            drop_connection_mid_put(store.addr(), &key_hex, 64 + trial * 17);
            drops += 1;
        }

        let fresh_point = seen.insert(key_hex);
        let computed = writer.run(&query);
        assert_eq!(
            computed.from_cache, !fresh_point,
            "trial {trial}: writer computes exactly the unseen points"
        );
        let shared = reader.run(&query);
        assert!(
            shared.from_cache,
            "trial {trial}: reader must hit the shared store"
        );
        let expected = ReportDigest::of(&reference.run(&query).report);
        assert_eq!(
            expected,
            ReportDigest::of(&computed.report),
            "trial {trial}: writer diverged from the store-less reference"
        );
        assert_eq!(
            expected,
            ReportDigest::of(&shared.report),
            "trial {trial}: reader diverged from the store-less reference"
        );
    }
    assert!(drops > 0, "seed must exercise at least one mid-PUT drop");
    assert_eq!(
        reader.cache_stats().remote_hits,
        seen.len() as u64,
        "every distinct point crossed the wire into the reader exactly once"
    );
    store.stop();
    assert_eq!(
        store
            .stats()
            .protocol_errors
            .load(std::sync::atomic::Ordering::Relaxed),
        drops,
        "every injected drop is a counted protocol error, nothing more"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Killing the store mid-deployment degrades to local compute: the sweep
/// still completes with the same bits, and every unreachable store
/// operation is counted.
#[test]
fn killed_store_degrades_to_local_compute_with_counted_unreachables() {
    let (mut store, dir) = spawn_store("degrade");
    let addr = store.addr().to_string();

    let warmer = remote_service(&addr);
    let query = Query::new(DesignKind::Virgo, small_shape()).clusters(2);
    let warmed = warmer.run(&query);
    store.stop(); // the store dies with entries in it

    let orphan = remote_service(&addr);
    let degraded = orphan.run(&query);
    assert!(
        !degraded.from_cache,
        "a dead store must degrade to local compute"
    );
    assert_eq!(
        ReportDigest::of(&warmed.report),
        ReportDigest::of(&degraded.report),
        "degraded recompute changed the report"
    );
    let stats = orphan.cache_stats();
    assert_eq!(
        stats.store_unreachable, 2,
        "one failed load + one failed save, each counted exactly once"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
