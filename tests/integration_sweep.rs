//! Integration tests of the sweep engine: the worker pool's ordering
//! guarantee, the report cache's bit-identity promise (fingerprint-pinned
//! for all four designs at N ∈ {1, 2, 4}) and the on-disk layer's
//! corruption handling.

use std::sync::Arc;

use virgo::{DesignKind, Gpu, SimMode, SimReport};
use virgo_bench::ReportDigest;
use virgo_kernels::GemmShape;
use virgo_sim::SplitMix64;
use virgo_sweep::{Query, ReportCache, SweepPoint, SweepPool, SweepService, DEFAULT_MAX_CYCLES};

/// Answers one design-space point through the Query API, returning the
/// `(report, from_cache)` pair the old `query_point` entry point exposed.
fn run_point(service: &SweepService, point: &SweepPoint) -> (Arc<SimReport>, bool) {
    let outcome = service.run(&Query::from(*point));
    (outcome.report, outcome.from_cache)
}

fn small_shape() -> GemmShape {
    // The smallest shape every design's tiling accepts at N up to 4.
    GemmShape {
        m: 128,
        n: 128,
        k: 128,
    }
}

/// A memory-only service so these tests are hermetic (no interaction with
/// other processes through the shared `target/sweep-cache/` directory).
fn memory_service() -> SweepService {
    SweepService::new(
        SweepPool::new(2),
        ReportCache::in_memory(256),
        DEFAULT_MAX_CYCLES,
    )
}

/// A service with a disk layer rooted in a fresh per-test temp directory.
fn disk_service(tag: &str) -> (SweepService, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("virgo-sweep-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service = SweepService::new(
        SweepPool::new(2),
        ReportCache::new(256, Some(dir.clone())),
        DEFAULT_MAX_CYCLES,
    );
    (service, dir)
}

/// Runs a point directly on the simulator, bypassing pool and cache — the
/// reference the cached answers are compared against.
fn fresh_report(point: &SweepPoint) -> SimReport {
    let config = point.config();
    let kernel = point.workload.build(&config);
    Gpu::new(config)
        .run_with_mode(&kernel, DEFAULT_MAX_CYCLES, point.mode)
        .expect("reference simulation completes")
}

/// The acceptance fingerprint: for every design at N ∈ {1, 2, 4}, an answer
/// served from the cache is bit-identical (via `ReportDigest`, which covers
/// cycles, every counter and the exact energy/power bits) to a fresh
/// simulation of the same point.
#[test]
fn cached_reports_are_bit_identical_for_all_designs_and_cluster_counts() {
    let service = memory_service();
    let shape = small_shape();
    for clusters in [1u32, 2, 4] {
        for design in DesignKind::all() {
            let point = SweepPoint::gemm(design, shape).with_clusters(clusters);
            // First query simulates and fills the cache...
            let (first, cached_first) = run_point(&service, &point);
            assert!(!cached_first, "{point} unexpectedly pre-cached");
            // ...second query must be a hit...
            let (second, cached_second) = run_point(&service, &point);
            assert!(cached_second, "{point} missed on the second query");
            assert!(
                Arc::ptr_eq(&first, &second),
                "{point}: memory hit must share the report"
            );
            // ...and both must match an independent fresh simulation.
            let reference = ReportDigest::of(&fresh_report(&point));
            assert_eq!(
                reference,
                ReportDigest::of(&second),
                "{point}: cached report diverges from a fresh simulation"
            );
        }
    }
    let stats = service.cache_stats();
    assert_eq!(stats.misses, 12, "4 designs x 3 cluster counts");
    assert_eq!(stats.hits, 12);
    assert_eq!(stats.disk_rejects, 0);
}

/// Disk-layer round trip: a report rehydrated from `target`-style JSON files
/// in a fresh process-equivalent (memory cleared) is bit-identical too.
#[test]
fn disk_cache_roundtrip_is_bit_identical() {
    let (service, dir) = disk_service("roundtrip");
    let point = SweepPoint::gemm(DesignKind::Virgo, small_shape()).with_clusters(2);
    let (first, _) = run_point(&service, &point);
    let before = ReportDigest::of(&first);
    drop(first);
    // Simulate a new invocation: the memory layer is gone, only disk remains.
    service.cache().clear_memory();
    let (second, cached) = run_point(&service, &point);
    assert!(cached, "disk layer must serve the cleared-memory query");
    assert_eq!(service.cache_stats().disk_hits, 1);
    assert_eq!(
        before,
        ReportDigest::of(&second),
        "disk round-trip changed the report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Property-style test: for pseudo-random `(design, shape, clusters, mode)`
/// points, a cache hit is always bit-identical to a fresh simulation of the
/// same point. SplitMix64-driven, like the rest of the workspace's
/// dependency-free property tests.
#[test]
fn random_points_hit_bit_identical() {
    let service = memory_service();
    let mut rng = SplitMix64::new(0x5EED_5157_EE01);
    let designs = DesignKind::all();
    for trial in 0..6 {
        let design = designs[rng.next_below(designs.len() as u64) as usize];
        let shape = small_shape();
        let clusters = [1u32, 2][rng.next_below(2) as usize];
        let dram_channels = [1u32, 2, 4][rng.next_below(3) as usize];
        let mode = if rng.next_below(2) == 0 {
            SimMode::FastForward
        } else {
            SimMode::Naive
        };
        let point = SweepPoint::gemm(design, shape)
            .with_clusters(clusters)
            .with_dram_channels(dram_channels)
            .with_mode(mode);
        let (first, _) = run_point(&service, &point);
        let (hit, cached) = run_point(&service, &point);
        assert!(cached, "trial {trial}: {point} second query missed");
        assert_eq!(
            ReportDigest::of(&first),
            ReportDigest::of(&hit),
            "trial {trial}: {point} hit diverged"
        );
        assert_eq!(
            ReportDigest::of(&fresh_report(&point)),
            ReportDigest::of(&hit),
            "trial {trial}: {point} cached report diverges from fresh"
        );
    }
}

/// Property-style corruption test: flipping bytes of an on-disk entry at
/// pseudo-random positions is always *detected* — the query degrades to a
/// miss and re-simulates; it never panics and never returns corrupt data.
#[test]
fn corrupted_disk_entries_are_detected_as_misses() {
    let (service, dir) = disk_service("corrupt");
    let point = SweepPoint::gemm(DesignKind::AmpereStyle, small_shape());
    let (original, _) = run_point(&service, &point);
    let before = ReportDigest::of(&original);
    drop(original);

    let entry = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .filter_map(|e| e.ok())
        .find(|e| e.path().extension().is_some_and(|x| x == "json"))
        .expect("one cache entry written")
        .path();
    let pristine = std::fs::read(&entry).unwrap();

    let mut rng = SplitMix64::new(0xC0DE_0BAD_CAFE);
    let mut rejects_seen = 0;
    for trial in 0..8 {
        // Corrupt one byte (avoiding a no-op flip), or truncate the file.
        let mut bytes = pristine.clone();
        if trial % 4 == 3 {
            bytes.truncate(bytes.len() / 2);
        } else {
            let pos = rng.next_below(bytes.len() as u64) as usize;
            bytes[pos] ^= 1 + (rng.next_below(255) as u8);
        }
        std::fs::write(&entry, &bytes).unwrap();
        service.cache().clear_memory();
        let (report, from_cache) = run_point(&service, &point);
        // Either the corruption was detected (miss + re-simulation) or the
        // flipped byte produced an equivalent document (e.g. a whitespace
        // byte); in *both* cases the answer must be bit-identical.
        assert_eq!(
            before,
            ReportDigest::of(&report),
            "trial {trial}: corrupted entry leaked into the answer"
        );
        if !from_cache {
            rejects_seen += 1;
        }
        // The miss path rewrote a valid entry; restore the pristine bytes
        // for the next trial anyway to keep trials independent.
        std::fs::write(&entry, &pristine).unwrap();
    }
    assert!(
        rejects_seen >= 6,
        "corruption almost never detected: {rejects_seen}/8 trials"
    );
    // `clear_memory` resets the counters each trial, so only the final
    // trial's reject is still visible in the stats snapshot.
    assert!(service.cache_stats().disk_rejects >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The streaming sweep hands completions to the caller as they finish but
/// the collected vector always lines up with the submitted grid — the
/// ordering guarantee `run_parallel` only provided by accident.
#[test]
fn sweep_collects_in_submission_order_while_streaming_completions() {
    let service = memory_service();
    let shape = small_shape();
    let grid: Vec<Query> = DesignKind::all()
        .into_iter()
        .flat_map(|design| {
            [1u32, 2]
                .into_iter()
                .map(move |n| Query::new(design, shape).clusters(n))
        })
        .collect();
    let mut completions = 0;
    let outcomes = service.run_streaming(&grid, |_| completions += 1);
    assert_eq!(completions, grid.len());
    assert_eq!(outcomes.len(), grid.len());
    for (submitted, outcome) in grid.iter().zip(&outcomes) {
        assert_eq!(
            submitted.point(),
            outcome.point(),
            "collected order diverged from submission order"
        );
    }
}
